"""World-detached feature-table bundle (the shard-worker's builder).

Shard-parallel store building (:mod:`repro.store.parallel`) runs scoring
in separate processes that must not — and cannot cheaply — reconstruct
the simulated world.  This module persists exactly the columnar tables
:meth:`FeatureBuilder.vectorize_columns` consults, pickle-free
(``manifest JSON + arrays.npz``), and rebuilds a *frozen* builder from
them:

=====================  ======================================================
Lookup                 Frozen source
=====================  ======================================================
BSLs per cell          occupied-cell / count arrays (:class:`_FrozenFabric`)
Ookla coverage         cell / score arrays -> dict (insertion order kept)
MLab test counts       (provider, cell, count) triples -> a real
                       :class:`~repro.dataset.likely_served.MLabLocalization`
Claim attributes       the worker's own ``ClaimColumns`` shard (passed in)
Encoders + caches      :meth:`FeatureBuilder.export_encoder_state`, with the
                       embedding/centroid caches pre-warmed for **every**
                       distinct provider/cell in the builder's claim table
=====================  ======================================================

Because every cache is warmed before export, the frozen builder never
needs the live provider universe; :class:`_FrozenUniverse` raises on any
residual access instead of silently diverging.  The equivalence suite
asserts frozen ``vectorize_columns`` output is bitwise-identical to the
live builder's.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.dataset.likely_served import MLabLocalization
from repro.features.embedding import TextEmbedder
from repro.features.vectorize import FeatureBuilder
from repro.utils.indexing import ColumnIndex

__all__ = ["save_feature_tables", "load_feature_tables"]

FEATURE_MANIFEST_NAME = "feature_tables.json"
FEATURE_ARRAYS_NAME = "feature_tables.npz"


class _FrozenFabric:
    """BSL-count lookups from persisted occupied-cell arrays.

    Mirrors :meth:`repro.fcc.fabric.Fabric.bsl_counts_in_cells` exactly
    (same index type, same miss semantics) so features built against it
    match the live fabric bitwise.
    """

    def __init__(self, cells: np.ndarray, counts: np.ndarray):
        self._cells = np.asarray(cells, dtype=np.uint64)
        self._counts = np.asarray(counts, dtype=np.int64)
        self._index = ColumnIndex(self._cells)

    def bsl_counts_in_cells(self, cells: np.ndarray) -> np.ndarray:
        cells = np.asarray(cells, dtype=np.uint64)
        if self._counts.size == 0 or cells.size == 0:
            return np.zeros(cells.size, dtype=np.int64)
        pos = self._index.positions(cells)
        found = pos >= 0
        return np.where(
            found, self._counts[np.where(found, pos, 0)], 0
        ).astype(np.int64)

    def bsl_count_in_cell(self, cell: int) -> int:
        return int(self.bsl_counts_in_cells(np.array([cell], dtype=np.uint64))[0])


class _FrozenUniverse:
    """Stand-in provider universe that refuses every lookup loudly.

    A frozen builder's caches cover every provider it will ever see; a
    ``provider()`` call therefore means a key outside the bundle's claim
    table reached the feature path — fail fast instead of inventing
    attributes.
    """

    def provider(self, provider_id: int):
        raise LookupError(
            f"provider {provider_id} is not covered by this frozen feature "
            "bundle (cold lookups need the live provider universe)"
        )


def save_feature_tables(path: str, builder: FeatureBuilder) -> str:
    """Persist a builder's vectorization tables into directory ``path``.

    Warms the embedding/centroid caches for every distinct provider and
    cell in the builder's claim table first, so the bundle is complete
    for scoring any subset of those claims.
    """
    claims = builder.claims
    builder.warm_caches(claims.provider_id, claims.cell)
    encoder_manifest, encoder_arrays = builder.export_encoder_state()

    fabric = builder.fabric
    if isinstance(fabric, _FrozenFabric):
        bsl_cells, bsl_counts = fabric._cells, fabric._counts
    else:
        bsl_cells, bsl_counts = np.unique(fabric.cells, return_counts=True)
        bsl_cells = bsl_cells.astype(np.uint64)
        bsl_counts = bsl_counts.astype(np.int64)

    coverage = builder.coverage_scores
    cov_cells = np.fromiter(coverage.keys(), dtype=np.uint64, count=len(coverage))
    cov_values = np.fromiter(
        coverage.values(), dtype=np.float64, count=len(coverage)
    )

    test_counts = builder.localization.test_counts
    mlab_providers = np.fromiter(
        (pid for pid, _ in test_counts), dtype=np.int64, count=len(test_counts)
    )
    mlab_cells = np.fromiter(
        (cell for _, cell in test_counts), dtype=np.uint64, count=len(test_counts)
    )
    mlab_counts = np.fromiter(
        test_counts.values(), dtype=np.int64, count=len(test_counts)
    )

    arrays = {
        "bsl_cells": bsl_cells,
        "bsl_counts": bsl_counts,
        "cov_cells": cov_cells,
        "cov_values": cov_values,
        "mlab_provider_ids": mlab_providers,
        "mlab_cells": mlab_cells,
        "mlab_counts": mlab_counts,
    }
    arrays.update(
        {f"encoder/{key}": arr for key, arr in encoder_arrays.items()}
    )
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, FEATURE_ARRAYS_NAME), "wb") as fh:
        np.savez_compressed(fh, **arrays)
    manifest = {
        "schema": 1,
        "kind": "feature-tables",
        "arrays": FEATURE_ARRAYS_NAME,
        "encoders": encoder_manifest,
    }
    with open(
        os.path.join(path, FEATURE_MANIFEST_NAME), "w", encoding="utf-8"
    ) as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_feature_tables(path: str, claims) -> FeatureBuilder:
    """Rebuild a frozen :class:`FeatureBuilder` over ``claims``.

    ``claims`` is the :class:`~repro.fcc.bdc.ClaimColumns` table (or any
    subset shard of it) the builder should vectorize against; its keys
    must fall inside the bundle's warmed caches.
    """
    manifest_path = os.path.join(path, FEATURE_MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(f"no feature-table manifest at {manifest_path}")
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("kind") != "feature-tables":
        raise ValueError(
            f"artifact kind {manifest.get('kind')!r} is not a feature-table "
            "bundle"
        )
    arrays_path = os.path.join(path, manifest.get("arrays", FEATURE_ARRAYS_NAME))
    with np.load(arrays_path, allow_pickle=False) as payload:
        arrays = {key: payload[key] for key in payload.files}
    encoder_arrays = {
        key.partition("/")[2]: arr
        for key, arr in arrays.items()
        if key.startswith("encoder/")
    }
    coverage = dict(
        zip(arrays["cov_cells"].tolist(), arrays["cov_values"].tolist())
    )
    test_counts = {
        (int(pid), int(cell)): int(count)
        for pid, cell, count in zip(
            arrays["mlab_provider_ids"],
            arrays["mlab_cells"],
            arrays["mlab_counts"],
        )
    }
    cells_by_provider: dict[int, set[int]] = {}
    for pid, cell in test_counts:
        cells_by_provider.setdefault(pid, set()).add(cell)
    localization = MLabLocalization(
        cells_by_provider=cells_by_provider,
        test_counts=test_counts,
        n_dropped_radius=0,
        n_dropped_unattributed=0,
    )
    builder = FeatureBuilder(
        fabric=_FrozenFabric(arrays["bsl_cells"], arrays["bsl_counts"]),
        universe=_FrozenUniverse(),
        table=claims,
        coverage_scores=coverage,
        localization=localization,
        embedder=TextEmbedder.from_spec(manifest["encoders"]["embedder"]),
    )
    builder.restore_encoder_state(manifest["encoders"], encoder_arrays)
    return builder
