"""Streaming BDC-CSV ingestion into a sharded claim store.

Real NBM tooling consumes one BDC availability CSV per state (the
``fetch_fcc.py`` shape: provider id, state, H3 cell, technology code,
location count, advertised speeds, latency flag).  This module reads
that format in bounded chunks, validates and normalizes every row, and
commits the survivors as a :class:`~repro.store.sharded.ShardedClaimColumns`
bundle:

* **Streaming parse** — rows are buffered per shard and converted into
  compact structured-array segments every ``chunk_rows`` rows, so
  Python-object overhead stays bounded by the chunk regardless of input
  size (the columnar segments themselves grow with the data; spilling
  them to disk is the follow-on for multi-GB releases).
* **Validation** — unknown states or technology codes, unparseable
  cells, non-numeric or non-finite speeds, sub-1 location counts, and
  short/truncated lines are *rejected, never ingested*: each lands in a
  ``rejected-*.csv`` sidecar with its source file, line number, and
  reason.  Speeds are normalized through the NBM publication floors
  (:data:`repro.fcc.bdc.NBM_SPEED_FLOORS`).
* **Duplicate keys** — a composite key ``(provider, cell, technology)``
  may appear once nationally; later occurrences (by source order),
  including cross-state re-filings that would land in *different*
  shards, are rejected to the sidecar naming the first occurrence.
* **Crash safety** — nothing under ``root`` changes until every source
  is parsed and deduplicated; the commit is
  :meth:`ShardedClaimColumns.save`'s atomic generation-plus-manifest
  protocol, so a killed ingest leaves the previous manifest pointing
  only at the previous run's complete shards.

The round-trip contract (property-tested):
``ClaimColumns -> write_bdc_csv -> ingest_csv -> to_claims`` is
bitwise-exact, including float speeds (written with ``repr``) and the
monolithic lexicographic row order.
"""

from __future__ import annotations

import csv
import hashlib
import io
import math
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.fcc.bdc import NBM_SPEED_FLOORS, ClaimColumns
from repro.fcc.providers import TECHNOLOGY_CODES
from repro.fcc.states import STATES
from repro.obs.metrics import get_metrics
from repro.store.sharded import (
    ShardedClaimColumns,
    _fsync_dir,
    _resolve_state_map,
)

__all__ = ["write_bdc_csv", "ingest_csv", "IngestResult", "BDC_CSV_FIELDS"]

#: Column order of the BDC-shaped availability CSV this module speaks.
BDC_CSV_FIELDS = (
    "provider_id",
    "state_usps",
    "h3_res8_id",
    "technology",
    "location_count",
    "max_advertised_download_speed",
    "max_advertised_upload_speed",
    "low_latency",
)

_STATE_INDEX = {s.abbr: i for i, s in enumerate(STATES)}
_TECH_CODES = frozenset(int(c) for c in TECHNOLOGY_CODES)
_LOW_LATENCY = {"0": False, "1": True, "false": False, "true": True}

#: Parsed-row record: the eight claim columns plus reject bookkeeping.
_ROW_DTYPE = np.dtype(
    [
        ("provider_id", np.int64),
        ("cell", np.uint64),
        ("technology", np.int16),
        ("claimed_count", np.int64),
        ("max_download_mbps", np.float64),
        ("max_upload_mbps", np.float64),
        ("low_latency", np.bool_),
        ("state_idx", np.int16),
        ("source_ord", np.int32),
        ("line", np.int64),
    ]
)


def write_bdc_csv(claims: ClaimColumns, path: str, rows=None) -> str:
    """Export claims as a BDC-shaped availability CSV.

    ``rows`` restricts the export to a row subset (monolithic indices).
    Cells render as 16-digit hex (the BDC ``h3_res8_id`` convention) and
    floats with ``repr`` so :func:`ingest_csv` round-trips them exactly.
    """
    if rows is None:
        rows = np.arange(len(claims))
    rows = np.asarray(rows, dtype=np.int64)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(BDC_CSV_FIELDS)
        for r in rows:
            r = int(r)
            writer.writerow(
                (
                    int(claims.provider_id[r]),
                    STATES[int(claims.state_idx[r])].abbr,
                    f"{int(claims.cell[r]):016x}",
                    int(claims.technology[r]),
                    int(claims.claimed_count[r]),
                    repr(float(claims.max_download_mbps[r])),
                    repr(float(claims.max_upload_mbps[r])),
                    "1" if claims.low_latency[r] else "0",
                )
            )
    return path


@dataclass
class IngestResult:
    """Outcome of one :func:`ingest_csv` run."""

    root: str
    n_read: int
    n_ingested: int
    n_rejected: int
    rejected_path: str | None
    per_shard: dict[str, dict] = field(default_factory=dict)
    reject_reasons: dict[str, int] = field(default_factory=dict)

    def load(self, mmap: bool = True) -> ShardedClaimColumns:
        return ShardedClaimColumns.load(self.root, mmap=mmap)


class _Rejects:
    """Accumulates rejected rows and renders the sidecar CSV."""

    def __init__(self):
        self.rows: list[tuple[str, int, str, str]] = []
        self.reasons: dict[str, int] = {}

    def add(self, source: str, line: int, reason: str, raw: str = "") -> None:
        self.rows.append((source, int(line), reason, raw))
        label = reason.split(":")[0]
        self.reasons[label] = self.reasons.get(label, 0) + 1

    def __len__(self) -> int:
        return len(self.rows)

    def render(self) -> str:
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(("source", "line", "reason", "raw"))
        for row in sorted(self.rows):
            writer.writerow(row)
        return out.getvalue()


def _parse_row(fields: list[str], parsed: list, rejects: _Rejects,
               source: str, line: int, source_ord: int) -> None:
    if len(fields) != len(BDC_CSV_FIELDS):
        rejects.add(
            source, line,
            f"wrong field count: expected {len(BDC_CSV_FIELDS)}, "
            f"got {len(fields)} (truncated or malformed line)",
            ",".join(fields),
        )
        return
    raw = ",".join(fields)
    (pid_s, state_s, cell_s, tech_s, count_s, down_s, up_s, lowlat_s) = fields
    try:
        pid = int(pid_s)
        if pid < 0:
            raise ValueError
    except ValueError:
        rejects.add(source, line, f"bad provider_id: {pid_s!r}", raw)
        return
    state_idx = _STATE_INDEX.get(state_s.strip().upper())
    if state_idx is None:
        rejects.add(source, line, f"unknown state: {state_s!r}", raw)
        return
    try:
        cell = int(cell_s, 16)
        if not 0 <= cell < 2**64:
            raise ValueError
    except ValueError:
        rejects.add(source, line, f"bad h3 cell id: {cell_s!r}", raw)
        return
    try:
        tech = int(tech_s)
    except ValueError:
        tech = None
    if tech not in _TECH_CODES:
        rejects.add(source, line, f"unknown technology code: {tech_s!r}", raw)
        return
    try:
        count = int(count_s)
        if count < 1:
            raise ValueError
    except ValueError:
        rejects.add(source, line, f"bad location count: {count_s!r}", raw)
        return
    try:
        down = float(down_s)
        up = float(up_s)
        if not (math.isfinite(down) and math.isfinite(up)) or down < 0 or up < 0:
            raise ValueError
    except ValueError:
        rejects.add(
            source, line, f"bad advertised speed: {down_s!r}/{up_s!r}", raw
        )
        return
    lowlat = _LOW_LATENCY.get(lowlat_s.strip().lower())
    if lowlat is None:
        rejects.add(source, line, f"bad low_latency flag: {lowlat_s!r}", raw)
        return
    # NBM publication floors (sub-floor speeds are published as 0).
    if down < NBM_SPEED_FLOORS[0]:
        down = 0.0
    if up < NBM_SPEED_FLOORS[1]:
        up = 0.0
    parsed.append(
        (pid, cell, tech, count, down, up, lowlat, state_idx, source_ord, line)
    )


def _open_source(source, ordinal: int):
    """(label, line-iterable, closer) for a path or file-like source."""
    if isinstance(source, (str, os.PathLike)):
        fh = open(source, encoding="utf-8", newline="")
        return os.path.basename(str(source)), fh, fh.close
    label = getattr(source, "name", None) or f"source-{ordinal}"
    return str(label), source, lambda: None


def ingest_csv(
    sources,
    root: str,
    shards=None,
    chunk_rows: int = 65_536,
) -> IngestResult:
    """Ingest BDC-shaped CSVs into a sharded claim bundle at ``root``.

    ``sources`` is an iterable of file paths and/or file-like objects
    (each must start with the :data:`BDC_CSV_FIELDS` header).  See the
    module docstring for validation, duplicate, and crash-safety
    semantics.
    """
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be >= 1")
    ingest_start = time.perf_counter()
    state_map = _resolve_state_map(shards)
    shard_names = sorted(set(state_map.values()))
    ordinal = {name: i for i, name in enumerate(shard_names)}
    shard_of_state = np.array(
        [ordinal[state_map[s.abbr]] for s in STATES], dtype=np.int64
    )
    rejects = _Rejects()
    segments: dict[int, list[np.ndarray]] = {i: [] for i in range(len(shard_names))}
    buffer: list[tuple] = []
    n_read = 0

    def _flush() -> None:
        if not buffer:
            return
        block = np.array(buffer, dtype=_ROW_DTYPE)
        buffer.clear()
        shard_ids = shard_of_state[block["state_idx"].astype(np.int64)]
        for sid in np.unique(shard_ids):
            segments[int(sid)].append(block[shard_ids == sid])

    source_labels: list[str] = []
    for source_ord, source in enumerate(sources):
        label, lines, close = _open_source(source, source_ord)
        source_labels.append(label)
        try:
            reader = csv.reader(lines)
            header = next(reader, None)
            if header is None or tuple(header) != BDC_CSV_FIELDS:
                raise ValueError(
                    f"source {label!r} does not start with the BDC header "
                    f"{','.join(BDC_CSV_FIELDS)!r}"
                )
            for fields in reader:
                n_read += 1
                _parse_row(
                    fields, buffer, rejects, label, reader.line_num, source_ord
                )
                if len(buffer) >= chunk_rows:
                    _flush()
        finally:
            close()
    _flush()

    # Per-shard assembly: order by key then source order, so the first
    # occurrence of every composite key survives deduplication.
    shard_data: dict[int, np.ndarray] = {}
    for sid, segs in segments.items():
        data = (
            np.concatenate(segs) if segs else np.empty(0, dtype=_ROW_DTYPE)
        )
        order = np.lexsort(
            (
                data["line"],
                data["source_ord"],
                data["technology"],
                data["cell"],
                data["provider_id"],
            )
        )
        shard_data[sid] = data[order]

    # Global duplicate scan (keys are unique *nationally*, so cross-shard
    # re-filings under a different state are duplicates too).
    all_keys = np.concatenate(
        [
            shard_data[sid][["provider_id", "cell", "technology"]]
            for sid in range(len(shard_names))
        ]
    )
    all_src = np.concatenate(
        [
            np.stack(
                [
                    shard_data[sid]["source_ord"].astype(np.int64),
                    shard_data[sid]["line"],
                ],
                axis=1,
            )
            for sid in range(len(shard_names))
        ]
    )
    keep = np.ones(all_keys.size, dtype=bool)
    if all_keys.size:
        order = np.lexsort(
            (
                all_src[:, 1],
                all_src[:, 0],
                all_keys["technology"],
                all_keys["cell"],
                all_keys["provider_id"],
            )
        )
        sorted_keys = all_keys[order]
        dup_follows = sorted_keys[1:] == sorted_keys[:-1]
        # First index of each duplicate's run, for the reject message:
        # propagate the last run-start index forward (run starts are
        # strictly increasing, so a running max carries them).
        is_start = np.r_[True, ~dup_follows]
        run_first = np.maximum.accumulate(
            np.where(is_start, np.arange(sorted_keys.size), 0)
        )
        for j in np.flatnonzero(np.r_[False, dup_follows]):
            dup_idx = order[j]
            first_idx = order[run_first[j]]
            keep[dup_idx] = False
            key = all_keys[dup_idx]
            rejects.add(
                source_labels[int(all_src[dup_idx, 0])],
                int(all_src[dup_idx, 1]),
                "duplicate claim key: "
                f"({int(key['provider_id'])}, {int(key['cell'])}, "
                f"{int(key['technology'])}) first seen at "
                f"{source_labels[int(all_src[first_idx, 0])]} line "
                f"{int(all_src[first_idx, 1])}",
            )

    # Split the keep mask back per shard and build the final columns.
    out_shards: dict[str, ClaimColumns] = {}
    kept_per_shard: dict[str, np.ndarray] = {}
    offset = 0
    per_shard_stats: dict[str, dict] = {}
    for sid, name in enumerate(shard_names):
        data = shard_data[sid]
        mask = keep[offset : offset + data.size]
        offset += data.size
        data = data[mask]
        out_shards[name] = ClaimColumns.from_arrays(
            {
                col: np.ascontiguousarray(data[col])
                for col, _ in ClaimColumns.EXPORT_FIELDS
            }
        )
        kept_per_shard[name] = data
        per_shard_stats[name] = {
            "n_rows": int(data.size),
            "states": sorted(
                STATES[i].abbr
                for i in np.unique(data["state_idx"]).astype(int)
            ),
        }

    # Global lexicographic row order across shards -> global_rows maps.
    n_total = sum(len(out_shards[name]) for name in shard_names)
    cat = (
        np.concatenate([kept_per_shard[name] for name in shard_names])
        if n_total
        else np.empty(0, dtype=_ROW_DTYPE)
    )
    perm = np.lexsort((cat["technology"], cat["cell"], cat["provider_id"]))
    global_of_concat = np.empty(n_total, dtype=np.int64)
    global_of_concat[perm] = np.arange(n_total, dtype=np.int64)
    global_rows: dict[str, np.ndarray] = {}
    offset = 0
    for name in shard_names:
        n = len(out_shards[name])
        global_rows[name] = global_of_concat[offset : offset + n]
        offset += n

    sharded = ShardedClaimColumns(out_shards, global_rows, state_map, n_total)

    # Commit: sidecar first (content-addressed, unreferenced until the
    # manifest lands), then the atomic generation + manifest replace.
    rejected_rel = None
    if len(rejects):
        content = rejects.render()
        digest = hashlib.sha256(content.encode("utf-8")).hexdigest()[:12]
        rejected_rel = f"rejected-{digest}.csv"
        os.makedirs(root, exist_ok=True)
        # fsync before the manifest commit references this file: the
        # manifest's durability protocol (fsync + rename in
        # ``ShardedClaimColumns.save``) only helps if the sidecar it
        # points at cannot itself be empty/torn after a crash.
        with open(
            os.path.join(root, rejected_rel), "w", encoding="utf-8", newline=""
        ) as fh:
            fh.write(content)
            fh.flush()
            os.fsync(fh.fileno())
        _fsync_dir(root)
    stats = {
        "rows_read": int(n_read),
        "rows_ingested": int(n_total),
        "rows_rejected": len(rejects),
        "reject_reasons": dict(sorted(rejects.reasons.items())),
        "sources": source_labels,
        "chunk_rows": int(chunk_rows),
        "rejected": rejected_rel,
        "per_shard": per_shard_stats,
    }
    sharded.save(root, extra_manifest={"ingest": stats})
    # Process-wide ingestion telemetry: rows by outcome, rejects by
    # reason family, and the run's wall time (rows/s = read / seconds).
    metrics = get_metrics()
    metrics.counter("ingest_rows_total", outcome="read").inc(int(n_read))
    metrics.counter("ingest_rows_total", outcome="ingested").inc(int(n_total))
    metrics.counter("ingest_rows_total", outcome="rejected").inc(len(rejects))
    for reason, count in rejects.reasons.items():
        metrics.counter("ingest_rejected_total", reason=reason).inc(int(count))
    metrics.histogram("ingest_seconds").observe(
        time.perf_counter() - ingest_start
    )
    # Sidecars from superseded runs are garbage once the manifest moves on.
    for entry in os.listdir(root):
        if (
            entry.startswith("rejected-")
            and entry.endswith(".csv")
            and entry != rejected_rel
        ):
            os.unlink(os.path.join(root, entry))
    return IngestResult(
        root=root,
        n_read=int(n_read),
        n_ingested=int(n_total),
        n_rejected=len(rejects),
        rejected_path=(
            os.path.join(root, rejected_rel) if rejected_rel else None
        ),
        per_shard=per_shard_stats,
        reject_reasons=dict(rejects.reasons),
    )
