"""Shard-parallel store building across ``multiprocessing`` workers.

The monolithic :meth:`ClaimScoreStore.build` scores ~10^5 claims in one
process; at national-shard scale the scoring loop is embarrassingly
parallel across shards.  This module runs it that way:

1. the parent saves three pickle-free bundles into a work directory —
   the model artifacts (:mod:`repro.serve.artifacts`), the frozen
   feature tables (:mod:`repro.store.bundle`), and the sharded claim
   columns (:mod:`repro.store.sharded`);
2. each worker process receives only *paths* (safe under both ``fork``
   and ``spawn``), loads its shard read-only via mmap, rebuilds a frozen
   builder + classifier from the bundles, scores the shard with the
   shared :func:`repro.serve.store.score_claim_blocks` kernel, and
   writes a ``margin`` partial (atomic ``os.replace``);
3. the parent scatters the partials through each shard's
   ``global_rows`` into the monolithic margin array.

Because per-row scoring is independent of batch composition, the
stitched margins are bitwise-identical to a monolithic build — the
property the sharded equivalence suite pins.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile

import numpy as np

__all__ = ["build_sharded_margins", "score_shard_to_file"]

_MODEL_DIR = "model"
_FEATURES_DIR = "features"
_CLAIMS_DIR = "claims"
_MARGINS_DIR = "margins"


def score_shard_to_file(job: tuple) -> tuple[str, int]:
    """Worker entry point: score one shard from on-disk bundles.

    ``job`` is ``(workdir, shard_name, block_rows, binned)``.  Loads the
    sharded claims (mmap), the frozen feature tables, and the model
    artifacts from ``workdir``, scores the named shard, and writes
    ``margins/<shard>.npy`` atomically.  Returns the shard name and its
    row count.  Module-level and argument-picklable, so it runs under
    any ``multiprocessing`` start method.
    """
    from repro.serve.artifacts import load_model_artifacts
    from repro.serve.store import score_claim_blocks
    from repro.store.bundle import load_feature_tables
    from repro.store.sharded import ShardedClaimColumns

    workdir, shard_name, block_rows, binned = job
    sharded = ShardedClaimColumns.load(
        os.path.join(workdir, _CLAIMS_DIR), mmap=True
    )
    shard = sharded.shard(shard_name)
    builder = load_feature_tables(
        os.path.join(workdir, _FEATURES_DIR), claims=shard
    )
    artifacts = load_model_artifacts(os.path.join(workdir, _MODEL_DIR))
    margin = score_claim_blocks(
        artifacts.classifier,
        builder,
        shard,
        block_rows=block_rows,
        binned=binned,
    )
    out_dir = os.path.join(workdir, _MARGINS_DIR)
    os.makedirs(out_dir, exist_ok=True)
    final = os.path.join(out_dir, f"{shard_name}.npy")
    tmp = final + ".tmp.npy"
    np.save(tmp, margin)
    os.replace(tmp, final)
    return shard_name, int(len(shard))


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def build_sharded_margins(
    classifier,
    builder,
    sharded,
    n_workers: int = 2,
    workdir: str | None = None,
    block_rows: int = 32_768,
    binned: bool = True,
    start_method: str | None = None,
) -> np.ndarray:
    """Monolithic-order margin array, scored shard-parallel.

    ``sharded`` is a :class:`~repro.store.sharded.ShardedClaimColumns`.
    ``n_workers <= 1`` runs the same per-shard pipeline in-process
    (still through the on-disk bundles, so worker loading stays covered
    by single-process tests).  ``workdir`` keeps the intermediate
    bundles when given; otherwise a temporary directory is used and
    removed.
    """
    from repro.serve.artifacts import save_model_artifacts
    from repro.store.bundle import save_feature_tables

    owns_workdir = workdir is None
    if owns_workdir:
        tmp = tempfile.TemporaryDirectory(prefix="shard-build-")
        workdir = tmp.name
    try:
        save_model_artifacts(os.path.join(workdir, _MODEL_DIR), classifier)
        save_feature_tables(os.path.join(workdir, _FEATURES_DIR), builder)
        sharded.save(os.path.join(workdir, _CLAIMS_DIR))
        jobs = [
            (workdir, name, int(block_rows), bool(binned))
            for name in sharded.shard_names
            if len(sharded.shard(name))
        ]
        if n_workers <= 1 or len(jobs) <= 1:
            for job in jobs:
                score_shard_to_file(job)
        else:
            ctx = multiprocessing.get_context(
                start_method or _default_start_method()
            )
            with ctx.Pool(processes=min(int(n_workers), len(jobs))) as pool:
                pool.map(score_shard_to_file, jobs)
        margin = np.empty(len(sharded))
        for _, name, _, _ in jobs:
            partial = np.load(
                os.path.join(workdir, _MARGINS_DIR, f"{name}.npy"),
                allow_pickle=False,
            )
            margin[sharded.global_rows(name)] = partial
        return margin
    finally:
        if owns_workdir:
            tmp.cleanup()
