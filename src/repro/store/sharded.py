"""National-shard claim store: per-state shards of ``ClaimColumns``.

The NBM's unit of release is the *state*: real BDC tooling downloads one
availability CSV per state and processes them slice by slice, and the
challenge-analysis literature works on the same per-state grain.  This
module splits the monolithic :class:`~repro.fcc.bdc.ClaimColumns`
parallel arrays into per-state (or grouped) shards that persist as raw
``.npy`` files — one file per column per shard — so a national-scale
store loads *read-only and zero-copy* via ``numpy.load(mmap_mode="r")``:
no column is paged in until something touches it.

Layout on disk (all paths relative to the bundle root)::

    root/
      manifest.json                  <- always the last file written
      data-00000001/                 <- one generation per save()
        shards/<name>/<column>.npy   <- the eight ClaimColumns columns
        shards/<name>/global_rows.npy    monolithic row per shard row
        shards/<name>/index__<key>.npy   persisted composite-key index
        shards/<name>/<extra>.npy    <- caller payloads (e.g. margins)

The manifest records the schema, per-column dtypes, per-shard row counts,
the state->shard routing map, and a SHA-256 content hash per file;
:meth:`ShardedClaimColumns.verify` re-hashes a bundle against it.  Saves
are crash-safe by construction: a new save writes a fresh generation
directory and only then atomically replaces ``manifest.json``
(``os.replace``), so a killed writer leaves the previous manifest
pointing at the previous — complete — generation.

Equivalence contract (property-tested): every shard preserves the
monolithic lexicographic key order among its own rows and carries the
``global_rows`` scatter map, so :meth:`to_claims` reassembles the
original ``ClaimColumns`` bitwise and :meth:`positions` agrees with the
monolithic composite index on hits *and* misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil

import numpy as np

from repro.fcc.bdc import ClaimColumns
from repro.fcc.states import STATES
from repro.obs.metrics import get_metrics
from repro.utils.indexing import MultiColumnIndex


def _stage_timer(stage: str):
    """Per-shard build/IO stage timer in the process-wide registry."""
    return get_metrics().histogram("shard_build_seconds", stage=stage).time()

__all__ = ["ShardedClaimColumns", "SHARD_MANIFEST_NAME"]

SHARD_MANIFEST_NAME = "manifest.json"

#: Manifest major version; bump on layout changes.
_SCHEMA = 1

_INDEX_PREFIX = "index__"

_STATE_ABBRS = tuple(s.abbr for s in STATES)


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_dir(path: str) -> None:
    """fsync a directory so renames/creates inside it are durable.

    Platforms that cannot open a directory for fsync (Windows) get the
    old best-effort behaviour instead of an error.
    """
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:  # pragma: no cover - non-POSIX fallback
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems without dir fsync
        pass
    finally:
        os.close(fd)


def _resolve_state_map(shards) -> dict[str, str]:
    """Normalize a shard layout spec into a full state->shard-name map.

    ``None``
        one shard per state, named by the lowercased abbreviation;
    ``int k``
        ``k`` shards named ``shard-00..`` with states dealt round-robin
        by state index (``k`` larger than the state count yields empty
        shards — a supported edge case);
    ``dict``
        explicit abbreviation->shard-name map (must cover every state).
    """
    if shards is None:
        return {abbr: abbr.lower() for abbr in _STATE_ABBRS}
    if isinstance(shards, int):
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        width = max(2, len(str(shards - 1)))
        return {
            abbr: f"shard-{i % shards:0{width}d}"
            for i, abbr in enumerate(_STATE_ABBRS)
        }
    state_map = {str(k): str(v) for k, v in dict(shards).items()}
    missing = [a for a in _STATE_ABBRS if a not in state_map]
    if missing:
        raise ValueError(
            f"shard map must route every state; missing {missing[:5]}"
        )
    return state_map


class ShardedClaimColumns:
    """A ``ClaimColumns`` table partitioned into named per-state shards.

    Each shard is itself a :class:`~repro.fcc.bdc.ClaimColumns` (rows in
    monolithic relative order) plus a ``global_rows`` int64 array mapping
    shard rows back to monolithic rows.  Construct with
    :meth:`from_claims` (split an in-memory table) or :meth:`load`
    (memory-map a saved bundle).
    """

    def __init__(
        self,
        shards: dict[str, ClaimColumns],
        global_rows: dict[str, np.ndarray],
        state_to_shard: dict[str, str],
        n_rows: int,
        extra_arrays: dict[str, dict[str, np.ndarray]] | None = None,
    ):
        if set(shards) != set(global_rows):
            raise ValueError("shards and global_rows must share names")
        unknown = set(state_to_shard.values()) - set(shards)
        if unknown:
            raise ValueError(f"state map routes to unknown shards {unknown}")
        self._shards = dict(shards)
        self._global_rows = {
            name: np.asarray(rows, dtype=np.int64)
            for name, rows in global_rows.items()
        }
        self.state_to_shard = dict(state_to_shard)
        self._n_rows = int(n_rows)
        #: Per-shard caller payloads loaded from a bundle (e.g. margins).
        self.extra_arrays = extra_arrays or {}

    def __len__(self) -> int:
        return self._n_rows

    @property
    def shard_names(self) -> list[str]:
        return sorted(self._shards)

    def shard(self, name: str) -> ClaimColumns:
        return self._shards[name]

    def global_rows(self, name: str) -> np.ndarray:
        return self._global_rows[name]

    # -- construction --------------------------------------------------------

    @classmethod
    def from_claims(
        cls, claims: ClaimColumns, shards=None
    ) -> "ShardedClaimColumns":
        """Partition a monolithic claim table by its per-row state.

        ``shards`` is a layout spec (see :func:`_resolve_state_map`).
        Row order within each shard is ascending monolithic row, so the
        monolithic lexicographic key order is preserved shard-locally.
        """
        state_map = _resolve_state_map(shards)
        names = sorted(set(state_map.values()))
        ordinal = {name: i for i, name in enumerate(names)}
        shard_of_state = np.array(
            [ordinal[state_map[a]] for a in _STATE_ABBRS], dtype=np.int64
        )
        shard_per_row = shard_of_state[claims.state_idx.astype(np.int64)]
        out_shards: dict[str, ClaimColumns] = {}
        out_rows: dict[str, np.ndarray] = {}
        for name in names:
            with _stage_timer("split"):
                rows = np.flatnonzero(shard_per_row == ordinal[name]).astype(
                    np.int64
                )
                out_shards[name] = claims.take(rows)
                out_rows[name] = rows
        return cls(out_shards, out_rows, state_map, len(claims))

    # -- monolithic views ----------------------------------------------------

    def to_claims(self) -> ClaimColumns:
        """Reassemble the monolithic table (bitwise) by scattering shards."""
        columns = {
            name: np.empty(self._n_rows, dtype=dtype)
            for name, dtype in ClaimColumns.EXPORT_FIELDS
        }
        for shard_name, shard in self._shards.items():
            rows = self._global_rows[shard_name]
            for name, _ in ClaimColumns.EXPORT_FIELDS:
                columns[name][rows] = getattr(shard, name)
        return ClaimColumns.from_arrays(columns)

    def positions(
        self, provider_id: np.ndarray, cell: np.ndarray, technology: np.ndarray
    ) -> np.ndarray:
        """Monolithic row per claim key (``-1`` = miss), probing shards.

        Keys are globally unique, so at most one shard answers each
        query; hits map through that shard's ``global_rows``.
        """
        provider_id = np.asarray(provider_id, dtype=np.int64)
        out = np.full(provider_id.size, -1, dtype=np.intp)
        for name, shard in self._shards.items():
            if not len(shard):
                continue
            pos = shard.positions(provider_id, cell, technology)
            hit = pos >= 0
            if hit.any():
                out[hit] = self._global_rows[name][pos[hit]]
        return out

    # -- persistence ---------------------------------------------------------

    def save(
        self,
        root: str,
        extra_shard_arrays: dict[str, dict[str, np.ndarray]] | None = None,
        extra_manifest: dict | None = None,
    ) -> str:
        """Write the sharded bundle under ``root`` (crash-safe commit).

        A fresh generation directory takes all the data files; the
        manifest is atomically replaced last, so an interrupted save
        never invalidates a previously committed bundle.
        ``extra_shard_arrays`` adds caller payloads per shard (e.g.
        ``{"ca": {"margin": ...}}``); ``extra_manifest`` merges extra
        top-level keys (e.g. ingestion stats) into the manifest.
        """
        os.makedirs(root, exist_ok=True)
        generation = self._next_generation(root)
        data_dir = os.path.join(root, generation)
        shard_entries = []
        for name in self.shard_names:
            shard = self._shards[name]
            shard_dir = os.path.join(data_dir, "shards", name)
            os.makedirs(shard_dir, exist_ok=True)
            arrays = dict(shard.export_arrays())
            arrays["global_rows"] = self._global_rows[name]
            for key, arr in shard.index.export_state().items():
                arrays[f"{_INDEX_PREFIX}{key}"] = arr
            for key, arr in (extra_shard_arrays or {}).get(name, {}).items():
                if key in arrays:
                    raise ValueError(f"extra array {key!r} shadows a column")
                arrays[key] = np.asarray(arr)
            files = {}
            with _stage_timer("write"):
                for key, arr in arrays.items():
                    rel = os.path.join(generation, "shards", name, f"{key}.npy")
                    target = os.path.join(root, rel)
                    np.save(target, np.ascontiguousarray(arr))
                    files[key] = {
                        "path": rel.replace(os.sep, "/"),
                        "sha256": _sha256_file(target),
                        "dtype": str(np.asarray(arr).dtype),
                    }
            states = sorted(
                a for a, s in self.state_to_shard.items() if s == name
            )
            shard_entries.append(
                {
                    "name": name,
                    "n_rows": int(len(shard)),
                    "states": states,
                    "files": files,
                }
            )
        manifest = {
            "schema": _SCHEMA,
            "kind": "sharded-claim-columns",
            "generation": generation,
            "n_rows": self._n_rows,
            "columns": {
                name: str(np.dtype(dtype))
                for name, dtype in ClaimColumns.EXPORT_FIELDS
            },
            "state_to_shard": dict(sorted(self.state_to_shard.items())),
            "shards": shard_entries,
        }
        for key, value in (extra_manifest or {}).items():
            if key in manifest:
                raise ValueError(f"extra manifest key {key!r} is reserved")
            manifest[key] = value
        # Durable commit: the rename is the commit point, so the tmp
        # file's *contents* must reach disk before it, and the directory
        # entry after it — otherwise a crash can surface a committed but
        # empty/torn manifest over intact data files.
        tmp = os.path.join(root, SHARD_MANIFEST_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        _fsync_dir(root)
        os.replace(tmp, os.path.join(root, SHARD_MANIFEST_NAME))
        _fsync_dir(root)
        self._collect_garbage(root, keep=generation)
        return root

    @staticmethod
    def _next_generation(root: str) -> str:
        ordinals = [0]
        for entry in os.listdir(root):
            if entry.startswith("data-"):
                try:
                    ordinals.append(int(entry[5:]))
                except ValueError:
                    continue
        return f"data-{max(ordinals) + 1:08d}"

    @staticmethod
    def _collect_garbage(root: str, keep: str) -> None:
        """Best-effort removal of superseded generation directories."""
        for entry in os.listdir(root):
            if entry.startswith("data-") and entry != keep:
                shutil.rmtree(os.path.join(root, entry), ignore_errors=True)

    @staticmethod
    def read_manifest(root: str) -> dict:
        manifest_path = os.path.join(root, SHARD_MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(
                f"no sharded-store manifest at {manifest_path}"
            )
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        if manifest.get("kind") != "sharded-claim-columns":
            raise ValueError(
                f"artifact kind {manifest.get('kind')!r} is not a sharded "
                "claim store"
            )
        return manifest

    @classmethod
    def load(cls, root: str, mmap: bool = True) -> "ShardedClaimColumns":
        """Open a saved bundle; ``mmap=True`` maps every array read-only.

        Memory-mapped columns are zero-copy views: nothing is paged in
        until a lookup touches it, and persisted composite-key indexes
        load the same way (no re-factorization).
        """
        manifest = cls.read_manifest(root)
        mode = "r" if mmap else None
        column_names = {name for name, _ in ClaimColumns.EXPORT_FIELDS}
        shards: dict[str, ClaimColumns] = {}
        global_rows: dict[str, np.ndarray] = {}
        extra: dict[str, dict[str, np.ndarray]] = {}
        for entry in manifest["shards"]:
            name = entry["name"]
            arrays: dict[str, np.ndarray] = {}
            index_state: dict[str, np.ndarray] = {}
            shard_extra: dict[str, np.ndarray] = {}
            with _stage_timer("load"):
                for key, meta in entry["files"].items():
                    arr = np.load(
                        os.path.join(root, meta["path"]),
                        mmap_mode=mode,
                        allow_pickle=False,
                    )
                    if str(arr.dtype) != meta["dtype"]:
                        raise ValueError(
                            f"shard {name!r} file {key!r} has dtype "
                            f"{arr.dtype}, manifest says {meta['dtype']}"
                        )
                    if key.startswith(_INDEX_PREFIX):
                        index_state[key[len(_INDEX_PREFIX):]] = arr
                    else:
                        arrays[key] = arr
            missing = (column_names | {"global_rows"}) - set(arrays)
            if missing:
                raise ValueError(
                    f"shard {name!r} is missing columns {sorted(missing)}"
                )
            rows = arrays.pop("global_rows")
            for key in list(arrays):
                if key not in column_names:
                    shard_extra[key] = arrays.pop(key)
            index = (
                MultiColumnIndex.from_state(index_state)
                if index_state
                else None
            )
            shard = ClaimColumns.from_arrays(arrays, index=index)
            if int(entry["n_rows"]) != len(shard):
                raise ValueError(
                    f"shard {name!r} row count {len(shard)} disagrees with "
                    f"manifest ({entry['n_rows']})"
                )
            shards[name] = shard
            global_rows[name] = rows
            if shard_extra:
                extra[name] = shard_extra
        return cls(
            shards,
            global_rows,
            manifest["state_to_shard"],
            manifest["n_rows"],
            extra_arrays=extra,
        )

    @staticmethod
    def verify(root: str) -> int:
        """Re-hash every file in a bundle against the manifest.

        Returns the number of files checked; raises ``ValueError`` on
        the first content mismatch and ``FileNotFoundError`` for files
        the manifest promises but the bundle lacks.
        """
        manifest = ShardedClaimColumns.read_manifest(root)
        checked = 0
        for entry in manifest["shards"]:
            for key, meta in entry["files"].items():
                path = os.path.join(root, meta["path"])
                if not os.path.exists(path):
                    raise FileNotFoundError(
                        f"shard {entry['name']!r} is missing {meta['path']}"
                    )
                digest = _sha256_file(path)
                if digest != meta["sha256"]:
                    raise ValueError(
                        f"content hash mismatch for {meta['path']}: "
                        f"manifest {meta['sha256'][:12]}…, file {digest[:12]}…"
                    )
                checked += 1
        return checked
