"""Shared utilities: deterministic RNG streams, table rendering, validation."""

from repro.utils.indexing import ColumnIndex, MultiColumnIndex
from repro.utils.rng import SeedSequenceRegistry, stream_rng, stream_seed
from repro.utils.tables import format_cdf, format_kv, format_series, format_table
from repro.utils.validation import (
    check_in_range,
    check_latitude,
    check_longitude,
    check_positive,
    check_probability,
)

__all__ = [
    "ColumnIndex",
    "MultiColumnIndex",
    "SeedSequenceRegistry",
    "stream_rng",
    "stream_seed",
    "format_cdf",
    "format_kv",
    "format_series",
    "format_table",
    "check_in_range",
    "check_latitude",
    "check_longitude",
    "check_positive",
    "check_probability",
]
