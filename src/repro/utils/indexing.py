"""Vectorized multi-column key indexes (the columnar-store backbone).

The pipeline repeatedly needs "hash-map" lookups keyed by small tuples of
integers — (provider, cell, technology) claims, (provider, cell) MLab
test counts, per-cell coverage scores — over batches of millions of
query rows.  Python ``dict`` access costs one interpreter round-trip per
observation; this module provides the columnar replacement:

=========================  ===================================================
Class                      Lookup
=========================  ===================================================
:class:`ColumnIndex`       one integer key column -> stored row position
:class:`MultiColumnIndex`  k parallel integer key columns -> stored row
                           position
=========================  ===================================================

Both map *arrays* of query keys to *arrays* of row positions in a single
vectorized pass (``-1`` marks a miss), so callers gather value columns
with one fancy index instead of looping a ``dict.get`` per row.

Design: each key column is factorized against its sorted unique values
(``np.searchsorted``); multi-column keys are fused two columns at a time
with a re-factorization after every fuse, which keeps every intermediate
code below ``n_keys * column_cardinality`` — int64-safe at any
realistic table size (overflow would need more than ~3e9 stored keys).
Because H3 cell ids occupy the full uint64 range, query columns are cast
to the stored column's exact dtype before comparison; mixing signed
queries against unsigned keys (or vice versa) is the caller's bug and is
rejected rather than silently routed through a lossy float64 promotion.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ColumnIndex", "MultiColumnIndex"]


def _as_key_column(values) -> np.ndarray:
    out = np.asarray(values)
    if out.ndim != 1:
        raise ValueError(f"key columns must be 1-D, got shape {out.shape}")
    if not np.issubdtype(out.dtype, np.integer):
        raise TypeError(f"key columns must be integers, got dtype {out.dtype}")
    return out


def _match_dtype(queries: np.ndarray, stored_dtype: np.dtype) -> np.ndarray:
    """Cast a query column to the stored dtype without a float round-trip."""
    if queries.dtype == stored_dtype:
        return queries
    signed_q = np.issubdtype(queries.dtype, np.signedinteger)
    signed_s = np.issubdtype(stored_dtype, np.signedinteger)
    if signed_q != signed_s:
        raise TypeError(
            f"query dtype {queries.dtype} and key dtype {stored_dtype} "
            "mix signed and unsigned integers"
        )
    return queries.astype(stored_dtype)


class ColumnIndex:
    """Sorted-unique index over one integer key column.

    ``positions(queries)`` returns, per query value, the position of that
    value in the *stored* column (``-1`` when absent).  Duplicate stored
    keys are rejected — the index represents a unique-key table.
    """

    def __init__(self, keys):
        keys = _as_key_column(keys)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        if sorted_keys.size > 1 and (sorted_keys[1:] == sorted_keys[:-1]).any():
            raise ValueError("stored keys must be unique")
        self._sorted = sorted_keys
        self._order = order.astype(np.intp)
        self.n_keys = int(keys.size)

    def positions(self, queries) -> np.ndarray:
        """Stored-row position per query value; ``-1`` marks a miss."""
        queries = _match_dtype(_as_key_column(queries), self._sorted.dtype)
        if self.n_keys == 0 or queries.size == 0:
            return np.full(queries.size, -1, dtype=np.intp)
        slot = np.searchsorted(self._sorted, queries)
        slot[slot == self.n_keys] = 0  # out-of-range probes; rejected below
        hit = self._sorted[slot] == queries
        return np.where(hit, self._order[slot], -1).astype(np.intp, copy=False)


class MultiColumnIndex:
    """Sorted composite index over k parallel integer key columns.

    One stored key is the tuple of the i-th element of every column; keys
    must be unique.  ``positions(*query_columns)`` vectorizes tuple
    lookup: every query column is factorized against the corresponding
    stored column's unique values, the per-column codes are fused into
    one dense composite code (staged, re-factorized after each fuse so
    intermediates never overflow int64), and the final dense code indexes
    a precomputed position table directly — no terminal binary search.
    """

    def __init__(self, *columns):
        if not columns:
            raise ValueError("at least one key column required")
        cols = [_as_key_column(c) for c in columns]
        n = cols[0].size
        if any(c.size != n for c in cols):
            raise ValueError("key columns must have equal length")
        self.n_keys = int(n)
        #: Per column: sorted unique values observed among stored keys.
        self._uniques: list[np.ndarray] = []
        #: Per fuse stage (columns 1..k-1): sorted unique fused codes.
        self._stage_codes: list[np.ndarray] = []
        uniq, codes = np.unique(cols[0], return_inverse=True)
        self._uniques.append(uniq)
        codes = codes.astype(np.int64)
        for col in cols[1:]:
            uniq, col_codes = np.unique(col, return_inverse=True)
            self._uniques.append(uniq)
            fused = codes * np.int64(max(uniq.size, 1)) + col_codes.astype(np.int64)
            stage, codes = np.unique(fused, return_inverse=True)
            self._stage_codes.append(stage)
            codes = codes.astype(np.int64)
        if np.unique(codes).size != n:
            raise ValueError("stored keys must be unique")
        # Final codes are dense 0..n-1, one per stored row: invert them.
        self._pos_by_code = np.empty(n, dtype=np.intp)
        self._pos_by_code[codes] = np.arange(n, dtype=np.intp)

    @property
    def n_columns(self) -> int:
        return len(self._uniques)

    # -- persistence ---------------------------------------------------------

    def export_state(self) -> dict[str, np.ndarray]:
        """The index internals as a flat name->array dict.

        Everything :meth:`positions` consults — per-column sorted uniques,
        per-stage fused codes, and the dense code->row table — so
        :meth:`from_state` rebuilds a working index without re-factorizing
        the key columns.  The sharded claim store persists these arrays
        per shard (the manifest's "composite-key index" payload) and
        memory-maps them back read-only.
        """
        out = {
            f"uniques_{i}": uniq for i, uniq in enumerate(self._uniques)
        }
        out.update(
            {f"stage_{i}": stage for i, stage in enumerate(self._stage_codes)}
        )
        out["pos_by_code"] = self._pos_by_code
        return out

    @classmethod
    def from_state(cls, arrays) -> "MultiColumnIndex":
        """Rebuild an index from :meth:`export_state` arrays (no refactorize).

        The arrays are used as given (read-only or memory-mapped views
        work); only the position table's dtype is normalized.  Malformed
        payloads (missing stages, wrong counts) raise ``ValueError``.
        """
        self = cls.__new__(cls)
        uniques: list[np.ndarray] = []
        while f"uniques_{len(uniques)}" in arrays:
            uniques.append(np.asarray(arrays[f"uniques_{len(uniques)}"]))
        if not uniques:
            raise ValueError("index state has no uniques_0 column")
        stages: list[np.ndarray] = []
        while f"stage_{len(stages)}" in arrays:
            stages.append(
                np.asarray(arrays[f"stage_{len(stages)}"], dtype=np.int64)
            )
        if len(stages) != len(uniques) - 1:
            raise ValueError(
                f"index state has {len(uniques)} key columns but "
                f"{len(stages)} fuse stages (expected {len(uniques) - 1})"
            )
        if "pos_by_code" not in arrays:
            raise ValueError("index state is missing the pos_by_code table")
        self._uniques = uniques
        self._stage_codes = stages
        self._pos_by_code = np.asarray(arrays["pos_by_code"]).astype(
            np.intp, copy=False
        )
        self.n_keys = int(self._pos_by_code.size)
        return self

    def positions(self, *query_columns) -> np.ndarray:
        """Stored-row position per query tuple; ``-1`` marks a miss."""
        if len(query_columns) != self.n_columns:
            raise ValueError(
                f"expected {self.n_columns} query columns, got {len(query_columns)}"
            )
        cols = [_as_key_column(c) for c in query_columns]
        m = cols[0].size
        if any(c.size != m for c in cols):
            raise ValueError("query columns must have equal length")
        if self.n_keys == 0 or m == 0:
            return np.full(m, -1, dtype=np.intp)

        def _factorize(table: np.ndarray, values: np.ndarray, valid: np.ndarray):
            slot = np.searchsorted(table, values)
            slot[slot == table.size] = 0
            valid &= table[slot] == values
            return slot.astype(np.int64), valid

        valid = np.ones(m, dtype=bool)
        col = _match_dtype(cols[0], self._uniques[0].dtype)
        codes, valid = _factorize(self._uniques[0], col, valid)
        for uniq, stage, raw in zip(
            self._uniques[1:], self._stage_codes, cols[1:]
        ):
            col = _match_dtype(raw, uniq.dtype)
            col_codes, valid = _factorize(uniq, col, valid)
            fused = codes * np.int64(max(uniq.size, 1)) + col_codes
            codes, valid = _factorize(stage, fused, valid)
        return np.where(valid, self._pos_by_code[codes], -1).astype(
            np.intp, copy=False
        )
