"""Deterministic random-number utilities.

Every stochastic component in the library draws from a named stream derived
from a single master seed.  This keeps whole-pipeline runs reproducible while
letting independent subsystems (fabric generation, challenge sampling, model
subsampling, ...) evolve without perturbing each other's draws.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["stream_seed", "stream_rng", "SeedSequenceRegistry"]

_MASK_63 = (1 << 63) - 1


def stream_seed(master_seed: int, *names: str | int) -> int:
    """Derive a stable 63-bit seed for a named stream.

    The derivation hashes the master seed together with the stream name parts,
    so ``stream_seed(7, "fabric")`` is stable across processes and platforms.

    >>> stream_seed(7, "fabric") == stream_seed(7, "fabric")
    True
    >>> stream_seed(7, "fabric") != stream_seed(7, "ookla")
    True
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(master_seed)).encode("utf-8"))
    for name in names:
        hasher.update(b"\x1f")
        hasher.update(str(name).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") & _MASK_63


def stream_rng(master_seed: int, *names: str | int) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator` for a named stream."""
    return np.random.default_rng(stream_seed(master_seed, *names))


class SeedSequenceRegistry:
    """Hand out named, reproducible generators from one master seed.

    The registry remembers which streams were requested, which is useful for
    debugging reproducibility issues ("which component consumed randomness?").

    >>> reg = SeedSequenceRegistry(42)
    >>> a = reg.rng("fabric")
    >>> b = reg.rng("fabric")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, master_seed: int):
        self.master_seed = int(master_seed)
        self._requested: list[tuple[str | int, ...]] = []

    def seed(self, *names: str | int) -> int:
        """Return the derived integer seed for a stream."""
        self._requested.append(names)
        return stream_seed(self.master_seed, *names)

    def rng(self, *names: str | int) -> np.random.Generator:
        """Return a fresh generator for a stream (same stream -> same draws)."""
        return np.random.default_rng(self.seed(*names))

    @property
    def requested_streams(self) -> list[tuple[str | int, ...]]:
        """Streams requested so far, in request order."""
        return list(self._requested)
