"""Plain-text table rendering for benchmark and report output.

The benchmark harness reproduces the paper's tables as text; this module
renders aligned ASCII tables without any third-party dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_kv", "format_cdf", "format_series"]


def _fmt_cell(value: object, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    floatfmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2.5], [10, 0.125]], floatfmt=".2f"))
    a  | b
    ---+-----
    1  | 2.50
    10 | 0.12
    """
    str_rows = [[_fmt_cell(cell, floatfmt) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_kv(pairs: Iterable[tuple[str, object]], floatfmt: str = ".4f") -> str:
    """Render key/value pairs, one per line, keys left-aligned."""
    items = [(k, _fmt_cell(v, floatfmt)) for k, v in pairs]
    if not items:
        return ""
    width = max(len(k) for k, _ in items)
    return "\n".join(f"{k.ljust(width)} : {v}" for k, v in items)


def format_cdf(
    values: Sequence[float],
    quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99),
    floatfmt: str = ".1f",
) -> str:
    """Render selected quantiles of an empirical distribution."""
    import numpy as np

    arr = np.asarray(sorted(values), dtype=float)
    if arr.size == 0:
        return "(empty)"
    rows = []
    for q in quantiles:
        rows.append([f"p{int(q * 100):02d}", float(np.quantile(arr, q))])
    return format_table(["quantile", "value"], rows, floatfmt=floatfmt)


def format_series(
    xs: Sequence[object],
    ys: Sequence[float],
    xlabel: str = "x",
    ylabel: str = "y",
    floatfmt: str = ".3f",
) -> str:
    """Render paired series (a text stand-in for a line plot)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    return format_table([xlabel, ylabel], list(zip(xs, ys)), floatfmt=floatfmt)
