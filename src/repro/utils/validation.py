"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

import math

__all__ = [
    "check_latitude",
    "check_longitude",
    "check_in_range",
    "check_positive",
    "check_probability",
]


def check_latitude(lat: float, name: str = "lat") -> float:
    """Validate a latitude in degrees and return it as a float."""
    lat = float(lat)
    if not math.isfinite(lat) or not -90.0 <= lat <= 90.0:
        raise ValueError(f"{name} must be in [-90, 90], got {lat!r}")
    return lat


def check_longitude(lng: float, name: str = "lng") -> float:
    """Validate a longitude in degrees and return it as a float."""
    lng = float(lng)
    if not math.isfinite(lng) or not -180.0 <= lng <= 180.0:
        raise ValueError(f"{name} must be in [-180, 180], got {lng!r}")
    return lng


def check_in_range(
    value: float, low: float, high: float, name: str = "value"
) -> float:
    """Validate ``low <= value <= high`` and return the value as a float."""
    value = float(value)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate that a value is strictly positive."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_probability(value: float, name: str = "value") -> float:
    """Validate that a value is a probability in [0, 1]."""
    return check_in_range(value, 0.0, 1.0, name)
