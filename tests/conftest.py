"""Shared fixtures: a small simulated BDC world reused across test modules.

Building the world (fabric -> providers -> filings -> challenges ->
releases) dominates test runtime, so it is session-scoped; tests must not
mutate it.
"""

import pytest

from repro.fcc import (
    ChallengeConfig,
    FabricConfig,
    ProviderConfig,
    build_provider_id_table,
    build_release_timeline,
    generate_fabric,
    generate_filings,
    generate_providers,
    simulate_challenges,
)

SEED = 1234


@pytest.fixture(scope="session")
def small_fabric():
    return generate_fabric(FabricConfig(locations_per_million=150), seed=SEED)


@pytest.fixture(scope="session")
def small_universe(small_fabric):
    return generate_providers(small_fabric, ProviderConfig(n_providers=60), seed=SEED)


@pytest.fixture(scope="session")
def small_filings(small_fabric, small_universe):
    return generate_filings(small_fabric, small_universe, seed=SEED)


@pytest.fixture(scope="session")
def small_challenges(small_filings, small_universe):
    return simulate_challenges(
        small_filings, small_universe, ChallengeConfig(), seed=SEED
    )


@pytest.fixture(scope="session")
def small_timeline(small_filings, small_universe, small_challenges):
    return build_release_timeline(
        small_filings, small_universe, small_challenges, seed=SEED
    )


@pytest.fixture(scope="session")
def small_provider_table(small_universe):
    return build_provider_id_table(small_universe, seed=SEED)


@pytest.fixture(scope="session")
def tiny_world():
    from repro.core import build_world, tiny

    return build_world(tiny(seed=7))


@pytest.fixture(scope="session")
def tiny_dataset(tiny_world):
    from repro.core import build_dataset

    return build_dataset(tiny_world)


@pytest.fixture(scope="session")
def tiny_builder(tiny_world):
    from repro.core import make_feature_builder

    return make_feature_builder(tiny_world)


@pytest.fixture(scope="session")
def tiny_model(tiny_world, tiny_dataset, tiny_builder):
    from repro.core import NBMIntegrityModel
    from repro.dataset import random_observation_split

    split = random_observation_split(tiny_dataset, seed=1)
    model = NBMIntegrityModel(tiny_builder, params=tiny_world.config.model).fit(
        tiny_dataset, split.train_idx
    )
    return model, split


@pytest.fixture(scope="session")
def tiny_score_store(tiny_model, tiny_builder):
    """Every distinct claim of the tiny world scored once (read-only)."""
    from repro.serve import ClaimScoreStore

    model, _ = tiny_model
    return ClaimScoreStore.build(model.classifier, tiny_builder)


@pytest.fixture(scope="session")
def ephemeral_server():
    """Factory: serve an :class:`AuditService` on an OS-assigned port.

    Returns a context manager — entering starts the daemon server thread
    and yields the live server, exiting shuts it down and closes the
    socket.  Every HTTP suite goes through this so the ephemeral-port
    bind/teardown discipline lives in exactly one place; keyword
    arguments (``resilience=...``, ``verbose=...``) pass through to
    :func:`repro.serve.make_server`.
    """
    import contextlib
    import threading

    from repro.serve import make_server

    @contextlib.contextmanager
    def serve(service, **kwargs):
        server = make_server(service, port=0, **kwargs)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()

    return serve


class ScenarioSuiteCache:
    """Lazily build (and cache) the scenario-harness baseline and runs.

    Scenario worlds are the most expensive fixtures in the suite, so they
    build on first use only: under ``-m "not slow"`` just the tier-1
    smoke scenarios materialize, while the slow sweep reuses whatever the
    smoke tests already built.
    """

    def __init__(self):
        self._baseline = None
        self._runs = {}

    @property
    def baseline(self):
        if self._baseline is None:
            from repro import scenarios

            self._baseline = scenarios.build_baseline()
        return self._baseline

    def run(self, name: str):
        if name not in self._runs:
            from repro import scenarios

            self._runs[name] = scenarios.run_scenario(name, self.baseline)
        return self._runs[name]


@pytest.fixture(scope="session")
def scenario_suite():
    """Shared lazy cache of scenario-harness runs (read-only)."""
    return ScenarioSuiteCache()
