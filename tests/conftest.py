"""Shared fixtures: a small simulated BDC world reused across test modules.

Building the world (fabric -> providers -> filings -> challenges ->
releases) dominates test runtime, so it is session-scoped; tests must not
mutate it.
"""

import numpy as np
import pytest

from repro.fcc import (
    ChallengeConfig,
    FabricConfig,
    ProviderConfig,
    build_provider_id_table,
    build_release_timeline,
    generate_fabric,
    generate_filings,
    generate_providers,
    simulate_challenges,
)

SEED = 1234


def make_random_claims(seed: int, n: int = 2000, n_states: int = 56):
    """A valid random :class:`ClaimColumns` for store property tests.

    Draws ``n`` candidate rows, dedups the ``(provider_id, cell,
    technology)`` composite keys, and returns them in the canonical
    lexicographic order — exactly the invariants ``ClaimColumns``
    promises, so the sharded store can be exercised without building a
    world.  Deterministic in ``seed``.
    """
    from repro.fcc.bdc import ClaimColumns
    from repro.fcc.providers import TECHNOLOGY_CODES

    rng = np.random.default_rng(seed)
    pid = rng.integers(1, max(4, n // 60), n).astype(np.int64)
    cell = rng.integers(0, 2**52, n).astype(np.uint64)
    tech = rng.choice(TECHNOLOGY_CODES, n).astype(np.int16)
    order = np.lexsort((tech, cell, pid))
    keys = np.stack(
        [pid[order].astype(np.uint64), cell[order], tech[order].astype(np.uint64)],
        axis=1,
    )
    keep = (
        np.r_[True, np.any(keys[1:] != keys[:-1], axis=1)]
        if n
        else np.zeros(0, dtype=bool)
    )
    rows = order[keep]
    return ClaimColumns.from_arrays(
        {
            "provider_id": pid[rows],
            "cell": cell[rows],
            "technology": tech[rows],
            "claimed_count": rng.integers(1, 12, rows.size).astype(np.int64),
            "max_download_mbps": np.round(rng.uniform(10.0, 980.0, rows.size), 3),
            "max_upload_mbps": np.round(rng.uniform(1.0, 95.0, rows.size), 3),
            "low_latency": rng.random(rows.size) < 0.5,
            "state_idx": rng.integers(0, n_states, rows.size).astype(np.int16),
        }
    )


def mmap_backed(array: np.ndarray) -> bool:
    """True when ``array``'s buffer chain bottoms out in a ``np.memmap``.

    Zero-copy views (``np.asarray`` / ``ascontiguousarray`` over a
    mapped file) are base-class ``ndarray`` instances, so a plain
    ``isinstance`` check misses them; walk ``.base`` instead.
    """
    while array is not None:
        if isinstance(array, np.memmap):
            return True
        array = array.base
    return False


@pytest.fixture(scope="session")
def small_fabric():
    return generate_fabric(FabricConfig(locations_per_million=150), seed=SEED)


@pytest.fixture(scope="session")
def small_universe(small_fabric):
    return generate_providers(small_fabric, ProviderConfig(n_providers=60), seed=SEED)


@pytest.fixture(scope="session")
def small_filings(small_fabric, small_universe):
    return generate_filings(small_fabric, small_universe, seed=SEED)


@pytest.fixture(scope="session")
def small_challenges(small_filings, small_universe):
    return simulate_challenges(
        small_filings, small_universe, ChallengeConfig(), seed=SEED
    )


@pytest.fixture(scope="session")
def small_timeline(small_filings, small_universe, small_challenges):
    return build_release_timeline(
        small_filings, small_universe, small_challenges, seed=SEED
    )


@pytest.fixture(scope="session")
def small_provider_table(small_universe):
    return build_provider_id_table(small_universe, seed=SEED)


@pytest.fixture(scope="session")
def tiny_world():
    from repro.core import build_world, tiny

    return build_world(tiny(seed=7))


@pytest.fixture(scope="session")
def tiny_dataset(tiny_world):
    from repro.core import build_dataset

    return build_dataset(tiny_world)


@pytest.fixture(scope="session")
def tiny_builder(tiny_world):
    from repro.core import make_feature_builder

    return make_feature_builder(tiny_world)


@pytest.fixture(scope="session")
def tiny_model(tiny_world, tiny_dataset, tiny_builder):
    from repro.core import NBMIntegrityModel
    from repro.dataset import random_observation_split

    split = random_observation_split(tiny_dataset, seed=1)
    model = NBMIntegrityModel(tiny_builder, params=tiny_world.config.model).fit(
        tiny_dataset, split.train_idx
    )
    return model, split


@pytest.fixture(scope="session")
def tiny_score_store(tiny_model, tiny_builder):
    """Every distinct claim of the tiny world scored once (read-only)."""
    from repro.serve import ClaimScoreStore

    model, _ = tiny_model
    return ClaimScoreStore.build(model.classifier, tiny_builder)


@pytest.fixture(scope="session")
def ephemeral_server():
    """Factory: serve an :class:`AuditService` on an OS-assigned port.

    Returns a context manager — entering starts the daemon server thread
    and yields the live server, exiting shuts it down and closes the
    socket.  Every HTTP suite goes through this so the ephemeral-port
    bind/teardown discipline lives in exactly one place; keyword
    arguments (``resilience=...``, ``verbose=...``) pass through to
    :func:`repro.serve.make_server`.
    """
    import contextlib
    import threading

    from repro.serve import make_server

    @contextlib.contextmanager
    def serve(service, **kwargs):
        server = make_server(service, port=0, **kwargs)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()

    return serve


class ScenarioSuiteCache:
    """Lazily build (and cache) the scenario-harness baseline and runs.

    Scenario worlds are the most expensive fixtures in the suite, so they
    build on first use only: under ``-m "not slow"`` just the tier-1
    smoke scenarios materialize, while the slow sweep reuses whatever the
    smoke tests already built.
    """

    def __init__(self):
        self._baseline = None
        self._runs = {}

    @property
    def baseline(self):
        if self._baseline is None:
            from repro import scenarios

            self._baseline = scenarios.build_baseline()
        return self._baseline

    def run(self, name: str):
        if name not in self._runs:
            from repro import scenarios

            self._runs[name] = scenarios.run_scenario(name, self.baseline)
        return self._runs[name]


@pytest.fixture(scope="session")
def scenario_suite():
    """Shared lazy cache of scenario-harness runs (read-only)."""
    return ScenarioSuiteCache()
