"""Tests for canonicalization rules (Appendix C)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asn import (
    canonical_address,
    canonical_company_name,
    canonical_email,
    canonical_email_domain,
)


def test_email_strip_and_lowercase():
    assert canonical_email(" NOC@Example.COM ") == "noc@example.com"


def test_email_domain_extraction():
    assert canonical_email_domain("a@B.Com") == "b.com"


def test_email_domain_filters_public():
    assert canonical_email_domain("bob@gmail.com") is None
    assert canonical_email_domain("bob@YAHOO.com") is None


def test_email_domain_handles_garbage():
    assert canonical_email_domain("not-an-email") is None


def test_company_name_suffix_removal():
    assert canonical_company_name("Acme Fiber Inc") == "acme fiber"
    assert canonical_company_name("Acme Fiber, L.L.C.") == "acme fiber"
    assert canonical_company_name("Acme Fiber Incorporated") == "acme fiber"


def test_company_name_nested_suffixes():
    assert canonical_company_name("Acme Fiber Co Inc") == "acme fiber"


def test_company_name_case_and_punctuation_insensitive():
    assert canonical_company_name("ACME-FIBER!") == canonical_company_name("Acme Fiber")


def test_company_name_does_not_eat_interior_words():
    # "Company" only strips as a trailing suffix.
    assert "telephone" in canonical_company_name("Rural Telephone Company")


def test_address_usps_abbreviations():
    a = canonical_address("100 Main Street, Springfield, NE 68001")
    b = canonical_address("100 MAIN ST Springfield NE 68001")
    assert a == b == "100 main st springfield ne 68001"


def test_address_multiple_designators():
    out = canonical_address("1 North Oak Avenue Suite 200")
    assert out == "1 n oak ave ste 200"


def test_address_idempotent():
    once = canonical_address("55 Telegraph Road, Columbus, OH 43004")
    assert canonical_address(once) == once


@given(st.text(max_size=60))
def test_company_name_total_and_idempotent(text):
    out = canonical_company_name(text)
    assert canonical_company_name(out) == out


@given(st.text(max_size=60))
def test_address_total_and_idempotent(text):
    out = canonical_address(text)
    assert canonical_address(out) == out
