"""Tests for the WHOIS registry and the 4-method crosswalk."""

import numpy as np
import pytest

from repro.asn import (
    MatchMethod,
    build_as2org,
    build_whois_registry,
    compare_groupings,
    match_providers_to_asns,
)


@pytest.fixture(scope="module")
def registry(small_universe):
    return build_whois_registry(small_universe, seed=99)


@pytest.fixture(scope="module")
def crosswalk(small_provider_table, registry):
    return match_providers_to_asns(small_provider_table, registry)


def test_every_provider_has_ownership_entry(registry, small_universe):
    assert set(registry.ownership) == {p.provider_id for p in small_universe.providers}


def test_nationals_own_multiple_asns(registry, small_universe):
    for p in small_universe.majors:
        asns = registry.ownership[p.provider_id]
        assert len(asns) >= 2


def test_some_providers_lack_asns(registry):
    assert any(not asns for asns in registry.ownership.values())


def test_transit_homed_providers_route_via_transit(registry):
    for pid, transit_asn in registry.transit_of.items():
        assert registry.ownership[pid] == ()
        assert transit_asn in registry.transit_asns
        assert registry.routing_asns(pid) == (transit_asn,)


def test_owned_asns_appear_in_registry(registry):
    for asns in registry.ownership.values():
        for asn in asns:
            assert asn in registry.asns


def test_pocs_for_asn_reachable(registry):
    for asn in list(registry.asns)[:30]:
        pocs = registry.pocs_for_asn(asn)
        assert isinstance(pocs, list)
    with pytest.raises(KeyError):
        registry.pocs_for_asn(-1)


def test_match_rate_near_paper(crosswalk, small_universe):
    # Paper Table 5: 72.4% of providers matched to at least one ASN.
    rate = len(crosswalk.matched_providers) / len(small_universe)
    assert 0.55 <= rate <= 0.90


def test_method_count_ordering(crosswalk):
    # Paper Table 5: domain and company name dominate; full email smallest.
    counts = crosswalk.method_counts()
    assert counts[MatchMethod.EMAIL_DOMAIN] > counts[MatchMethod.FULL_EMAIL]
    assert counts[MatchMethod.COMPANY_NAME] > counts[MatchMethod.FULL_EMAIL]


def test_union_is_union_of_methods(crosswalk):
    for pid, asns in crosswalk.union.items():
        merged = set()
        for mapping in crosswalk.by_method.values():
            merged |= mapping.get(pid, set())
        assert asns == merged


def test_matches_mostly_correct(crosswalk, registry):
    tp = fp = 0
    for pid, asns in crosswalk.union.items():
        truth = set(registry.ownership.get(pid, ()))
        tp += len(asns & truth)
        fp += len(asns - truth)
    assert tp > 3 * fp


def test_shared_asns_exist(crosswalk):
    # Paper found 226 ASNs mapped to multiple providers (corporate groups
    # and shared transit).
    assert crosswalk.shared_asns
    for asn, pids in crosswalk.shared_asns.items():
        assert len(pids) > 1


def test_jaccard_matrix_properties(crosswalk):
    methods, matrix = crosswalk.jaccard_matrix()
    n = len(methods)
    assert matrix.shape == (n, n)
    for i in range(n):
        if not np.isnan(matrix[i, i]):
            assert matrix[i, i] == pytest.approx(1.0)
    for i in range(n):
        for j in range(n):
            if not np.isnan(matrix[i, j]):
                assert matrix[i, j] == pytest.approx(matrix[j, i])
                assert 0.0 <= matrix[i, j] <= 1.0


def test_match_strength_classification(crosswalk):
    strengths = {crosswalk.match_strength(pid) for pid in crosswalk.union}
    assert "none" in strengths or "strong" in strengths
    for pid in crosswalk.union:
        assert crosswalk.match_strength(pid) in ("strong", "partial", "single", "none")


def test_as2org_groups_partition_asns(registry):
    dataset = build_as2org(registry)
    seen = set()
    for group in dataset.groups.values():
        assert not (group & seen)
        seen |= group
    assert seen == set(registry.asns)


def test_as2org_agreement_high(crosswalk, registry):
    # Paper §6.1: mean Jaccard ~0.9 vs as2org+, ~80% exact.
    comparison = compare_groupings(crosswalk, build_as2org(registry))
    assert comparison.mean_jaccard > 0.75
    assert comparison.exact_match_rate > 0.5


def test_unmatched_providers_skew_small(crosswalk, small_universe):
    # Paper Fig. 4: unmatched providers skew small.  The mechanism is ASN
    # ownership by size class: every national ISP must match, and the
    # unmatched set must be dominated by locals.  (The median-claims gap
    # itself is too noisy to assert at this 60-provider test scale.)
    matched = crosswalk.matched_providers
    for p in small_universe.majors:
        assert p.provider_id in matched
    unmatched = [
        p for p in small_universe.terrestrial if p.provider_id not in matched
    ]
    assert unmatched
    local_share = np.mean([p.size_class == "local" for p in unmatched])
    assert local_share >= 0.5


def test_registry_determinism(small_universe):
    a = build_whois_registry(small_universe, seed=5)
    b = build_whois_registry(small_universe, seed=5)
    assert a.ownership == b.ownership
    assert set(a.asns) == set(b.asns)
