"""AuditClient round-trips against a live server, plus hot-swap atomicity.

The concurrency test is the acceptance check for the registry redesign:
while a writer thread hot-swaps the default version back and forth,
every reader response — pages and batches — must be internally
consistent with exactly one registry version (the one named in its
envelope), never a mix.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

import numpy as np
import pytest

from repro.client import AuditAPIError, AuditClient
from repro.serve import AuditService, ClaimScoreStore
from repro.serve.schemas import ClaimKey


@pytest.fixture(scope="module", params=["monolithic", "sharded"])
def swap_service(request, tiny_model, tiny_score_store, tmp_path_factory):
    """Two versions over the same claims with sign-flipped margins.

    The ``sharded`` variant serves the default version from a store
    round-tripped through a shard bundle (mmap-backed), so the whole
    client suite — including the hot-swap consistency check — also runs
    against the sharded substrate.
    """
    model, _split = tiny_model
    store = tiny_score_store
    if request.param == "sharded":
        root = str(tmp_path_factory.mktemp("sharded-store"))
        store.save_sharded(root, shards=3)
        store = ClaimScoreStore.load_sharded(root)
    service = AuditService.from_model(model, store=store)
    flipped = ClaimScoreStore(store.claims, -store.margin)
    service.add_version("flipped", flipped)
    yield service
    service.activate("default")
    service.close()


@pytest.fixture(scope="module")
def served(swap_service, ephemeral_server):
    with ephemeral_server(swap_service) as server:
        yield server, swap_service


@pytest.fixture()
def client(served):
    server, _service = served
    c = AuditClient(f"http://127.0.0.1:{server.server_address[1]}")
    yield c
    c.close()


def _known_key(store, nth=0):
    return store.claims.key_at(int(store.sus_order[nth]))


# -- basic round-trips --------------------------------------------------------


def test_health_stats_models(client, tiny_score_store):
    health = client.health()
    assert health["status"] == "ok" and health["n_claims"] == len(tiny_score_store)
    assert "max_result_rows" in health["limits"]
    assert "batcher" in client.stats()
    models = client.models()
    assert {v["name"] for v in models["versions"]} == {"default", "flipped"}


def test_get_claim_typed_roundtrip(client, tiny_score_store):
    store = tiny_score_store
    row = int(store.sus_order[0])
    record = client.get_claim(*store.claims.key_at(row))
    assert record is not None
    assert record.to_dict() == store.record(row)
    assert record.rank == 0 and record.precomputed is True
    # Unknown claim: None, not an exception.
    assert client.get_claim(-1, 2, 3) is None


def test_get_claim_cold_path(client, tiny_score_store):
    store = tiny_score_store
    pid, cell, _tech = _known_key(store)
    missing = next(
        t
        for t in (10, 40, 50, 70, 71)
        if store.positions(
            np.array([pid]), np.array([cell], dtype=np.uint64), np.array([t])
        )[0]
        < 0
    )
    record = client.get_claim(pid, cell, missing, state="TX")
    assert record is not None and record.precomputed is False
    assert record.rank is None and record.claimed_count is None


def test_api_errors_carry_status_and_message(client):
    with pytest.raises(AuditAPIError) as err:
        client.page_claims(limit=0)
    assert err.value.status == 400 and "limit" in str(err.value)
    with pytest.raises(AuditAPIError) as err:
        client.state_summary("NOWHERE")
    assert err.value.status == 400 and "unknown state" in str(err.value)


def test_summaries(client, tiny_score_store):
    pid, _cell, _tech = _known_key(tiny_score_store)
    summary = client.provider_summary(pid)
    assert summary["provider_id"] == pid and summary["n_claims"] > 0
    state = summary["top_claims"][0]["state"]
    assert client.state_summary(state)["state"] == state


# -- pagination ---------------------------------------------------------------


def test_full_pagination_walk_equals_suspicion_order(client, tiny_score_store):
    """The satellite acceptance: a full cursor walk IS the store order."""
    store = tiny_score_store
    ranks = [rec.rank for rec in client.iter_claims(page_size=1009)]
    assert ranks == list(range(len(store)))
    margins = [
        rec.margin for rec in client.iter_claims(page_size=997, max_items=50)
    ]
    assert margins == [float(store.margin[r]) for r in store.sus_order[:50]]


def test_filtered_pagination_walk(client, tiny_score_store):
    store = tiny_score_store
    pid = int(store.claims.provider_id[int(store.sus_order[0])])
    expected_rows = store.sus_order[
        (store.claims.provider_id == pid)[store.sus_order]
    ]
    # A page size forcing a multi-page walk without thousands of requests.
    page_size = max(1, len(expected_rows) // 5 + 1)
    records = list(client.iter_claims(provider_id=pid, page_size=page_size))
    assert [r.rank for r in records] == [
        int(store.sus_rank[row]) for row in expected_rows
    ]
    assert all(r.provider_id == pid for r in records)


def test_iter_pages_exposes_envelopes(client, tiny_score_store):
    pages = list(client.iter_pages(page_size=2000))
    assert all(p.model_version == "default" for p in pages)
    assert sum(len(p.items) for p in pages) == len(tiny_score_store)
    assert pages[-1].next_cursor is None
    assert all(p.total == len(tiny_score_store) for p in pages)


# -- batch scoring ------------------------------------------------------------


def test_batch_score_matches_score_claims(client, served, tiny_score_store):
    """The satellite acceptance: SDK batch == service.score_claims."""
    _server, service = served
    store = tiny_score_store
    rows = np.linspace(0, len(store) - 1, 64).astype(int)
    claims = store.claims
    keys = [claims.key_at(int(r)) for r in rows]
    response = client.batch_score(keys + [(-1, 2, 3)])
    assert response.model_version == "default"
    expected = service.score_claims(
        claims.provider_id[rows], claims.cell[rows], claims.technology[rows]
    )
    assert [None if r is None else r.to_dict() for r in response.results] == (
        expected + [None]
    )


def test_batch_score_accepts_mixed_key_shapes(client, tiny_score_store):
    key = _known_key(tiny_score_store)
    response = client.batch_score(
        [key, ClaimKey(*key), {"provider_id": key[0], "cell": key[1], "technology": key[2]}]
    )
    first, second, third = response.results
    assert first == second == third and first is not None


# -- retries ------------------------------------------------------------------


class _FlakyHandler(BaseHTTPRequestHandler):
    """503s the first N requests, then delegates a trivial health body."""

    failures_left = 2

    def do_GET(self):  # noqa: N802
        cls = type(self)
        if cls.failures_left > 0:
            cls.failures_left -= 1
            body = json.dumps({"error": "warming up"}).encode()
            self.send_response(503)
        else:
            body = json.dumps({"status": "ok"}).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):
        pass


def test_client_retries_transient_failures():
    server = HTTPServer(("127.0.0.1", 0), _FlakyHandler)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        _FlakyHandler.failures_left = 2
        client = AuditClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            retries=2,
            retry_backoff_s=0.0,
        )
        assert client.health() == {"status": "ok"}
        # Retries exhausted: the last 503 surfaces as an AuditAPIError.
        _FlakyHandler.failures_left = 99
        impatient = AuditClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            retries=1,
            retry_backoff_s=0.0,
        )
        with pytest.raises(AuditAPIError) as err:
            impatient.health()
        assert err.value.status == 503 and "warming up" in str(err.value)
    finally:
        server.shutdown()
        server.server_close()


def test_client_surfaces_connection_failure():
    # Bind-then-close guarantees a dead port.
    probe = HTTPServer(("127.0.0.1", 0), _FlakyHandler)
    port = probe.server_address[1]
    probe.server_close()
    client = AuditClient(f"http://127.0.0.1:{port}", retries=1, retry_backoff_s=0.0)
    with pytest.raises(AuditAPIError) as err:
        client.health()
    assert err.value.status is None


def test_client_rejects_bad_base_url():
    with pytest.raises(ValueError, match="base_url"):
        AuditClient("ftp://example.com")


# -- resilience: Retry-After, backoff caps, call deadlines --------------------


class _SheddingHandler(BaseHTTPRequestHandler):
    """429s the first N requests (with a configurable Retry-After), then
    serves a trivial health body; records every deadline header seen."""

    sheds_left = 0
    retry_after: str | None = "0"
    seen_deadline_headers: list = []

    def do_GET(self):  # noqa: N802
        cls = type(self)
        cls.seen_deadline_headers.append(self.headers.get("X-Request-Deadline-Ms"))
        if cls.sheds_left > 0:
            cls.sheds_left -= 1
            body = json.dumps({"error": "overloaded"}).encode()
            self.send_response(429)
            if cls.retry_after is not None:
                self.send_header("Retry-After", cls.retry_after)
        else:
            body = json.dumps({"status": "ok"}).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):
        pass


@pytest.fixture()
def shed_url():
    server = HTTPServer(("127.0.0.1", 0), _SheddingHandler)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    _SheddingHandler.sheds_left = 0
    _SheddingHandler.retry_after = "0"
    _SheddingHandler.seen_deadline_headers = []
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


def test_client_honors_retry_after(shed_url):
    """A server-sent Retry-After: 0 overrides the computed backoff: with
    a 30s base the retry would otherwise sleep ~15s minimum."""
    _SheddingHandler.sheds_left = 1
    client = AuditClient(shed_url, retries=2, retry_backoff_s=30.0)
    start = time.monotonic()
    assert client.health() == {"status": "ok"}
    assert time.monotonic() - start < 5.0
    client.close()


def test_client_caps_server_retry_after(shed_url):
    """An absurd Retry-After (1h) is clamped to retry_backoff_cap_s —
    the server advises the delay, the client bounds it."""
    _SheddingHandler.sheds_left = 1
    _SheddingHandler.retry_after = "3600"
    client = AuditClient(
        shed_url, retries=2, retry_backoff_s=0.0, retry_backoff_cap_s=0.05
    )
    start = time.monotonic()
    assert client.health() == {"status": "ok"}
    assert time.monotonic() - start < 5.0
    client.close()


def test_client_deadline_bounds_retry_sleeps(shed_url):
    """With endless 429s (no Retry-After) and a huge backoff, a 0.3s call
    deadline surfaces the last failure instead of sleeping out retries."""
    _SheddingHandler.sheds_left = 99
    _SheddingHandler.retry_after = None
    client = AuditClient(shed_url, retries=5, retry_backoff_s=30.0)
    start = time.monotonic()
    with pytest.raises(AuditAPIError) as err:
        client.health(deadline=0.3)
    assert time.monotonic() - start < 2.0
    assert err.value.status == 429
    client.close()


def test_client_sends_remaining_deadline_header(shed_url):
    client = AuditClient(shed_url, retries=0)
    assert client.health(deadline=2.0) == {"status": "ok"}
    assert client.health() == {"status": "ok"}
    with_deadline, without = _SheddingHandler.seen_deadline_headers
    assert with_deadline is not None and 0 < int(with_deadline) <= 2000
    assert without is None
    client.close()


def test_client_deadline_round_trips_to_server(client):
    """Against the real server, a generous per-call deadline changes
    nothing about the result."""
    health = client.health(deadline=10.0)
    assert health["status"] == "ok"
    assert client.ready(deadline=10.0)["ready"] is True


def test_client_base_url_path_prefix_is_honored(served):
    """http://host/prefix base URLs prepend the prefix to every request."""
    server, _service = served
    prefixed = AuditClient(
        f"http://127.0.0.1:{server.server_address[1]}/audit", retries=0
    )
    with pytest.raises(AuditAPIError) as err:
        prefixed.health()
    # Our test server mounts no /audit prefix, so the 404 proves the
    # prefix actually went out on the wire instead of being dropped.
    assert err.value.status == 404 and "/audit/healthz" in str(err.value)
    prefixed.close()


# -- hot-swap atomicity under concurrent load --------------------------------


def test_concurrent_hot_swap_never_mixes_versions(served, tiny_score_store):
    """No response may mix versions while activate() flips under load."""
    server, service = served
    store_by_version = {
        "default": tiny_score_store,
        "flipped": service.registry.get("flipped").store,
    }
    base = f"http://127.0.0.1:{server.server_address[1]}"
    store = tiny_score_store
    rows = np.linspace(0, len(store) - 1, 16).astype(int)
    keys = [store.claims.key_at(int(r)) for r in rows]

    stop = threading.Event()
    violations: list[str] = []

    def reader():
        client = AuditClient(base, retries=0)
        try:
            while not stop.is_set():
                page = client.page_claims(limit=5)
                expected = store_by_version[page.model_version]
                if [r.margin for r in page.items] != [
                    float(expected.margin[row])
                    for row in expected.sus_order[:5]
                ]:
                    violations.append(f"mixed page under {page.model_version}")
                response = client.batch_score(keys)
                expected = store_by_version[response.model_version]
                got = [r.margin for r in response.results]
                want = [float(expected.margin[int(r)]) for r in rows]
                if got != want:
                    violations.append(
                        f"mixed batch under {response.model_version}"
                    )
        finally:
            client.close()

    readers = [threading.Thread(target=reader) for _ in range(3)]
    for t in readers:
        t.start()
    swapper = AuditClient(base)
    try:
        for i in range(40):
            swapper.activate_model("flipped" if i % 2 == 0 else "default")
    finally:
        stop.set()
        for t in readers:
            t.join()
        swapper.activate_model("default")
        swapper.close()
    assert not violations, violations[:5]
