"""Tests for the integrity model, reports, and the JCC case study."""

import numpy as np
import pytest

from repro.core import (
    NBMIntegrityModel,
    build_dataset,
    run_jcc_case_study,
    slice_report,
    state_reports,
    technology_reports,
    tiny,
)
from repro.dataset import (
    fcc_adjudicated_split,
    random_observation_split,
    state_holdout_split,
)


def test_random_holdout_auc_shape(tiny_dataset, tiny_model):
    # Paper Fig. 5a: AUC 0.99 on the random observation holdout.
    model, split = tiny_model
    result = model.evaluate(tiny_dataset, split)
    assert result.auc > 0.9
    assert result.f1 > 0.8


def test_state_holdout_generalizes(tiny_dataset, tiny_builder, tiny_world):
    # Paper Fig. 5c: AUC 0.98 on unseen states.
    split = state_holdout_split(tiny_dataset)
    model = NBMIntegrityModel(tiny_builder, params=tiny_world.config.model).fit(
        tiny_dataset, split.train_idx
    )
    result = model.evaluate(tiny_dataset, split)
    assert result.auc > 0.88


def test_fcc_adjudicated_harder(tiny_dataset, tiny_builder, tiny_world, tiny_model):
    # Paper Fig. 5b: the FCC-adjudicated holdout is the weakest.
    model, split_random = tiny_model
    random_result = model.evaluate(tiny_dataset, split_random)
    split_fcc = fcc_adjudicated_split(tiny_dataset, seed=1)
    fcc_model = NBMIntegrityModel(tiny_builder, params=tiny_world.config.model).fit(
        tiny_dataset, split_fcc.train_idx
    )
    fcc_result = fcc_model.evaluate(tiny_dataset, split_fcc)
    assert fcc_result.auc > 0.6
    assert fcc_result.auc < random_result.auc


def test_speedtest_features_dominate(tiny_model):
    # Paper Fig. 10: Ookla density and MLab counts are the top features.
    model, _ = tiny_model
    top = {name for name, _ in model.feature_importances(top_k=3)}
    assert "MLab Test Counts" in top
    assert "Ookla (Dev/Loc)" in top


def test_predictions_probabilities(tiny_dataset, tiny_model):
    model, split = tiny_model
    test = split.test(tiny_dataset)[:50]
    proba = model.predict_proba(test)
    assert ((proba >= 0) & (proba <= 1)).all()
    preds = model.predict(test)
    assert set(np.unique(preds)).issubset({0, 1})


def test_explain_additivity(tiny_dataset, tiny_model):
    model, split = tiny_model
    test = split.test(tiny_dataset)[:10]
    expl = model.explain(test)
    margins = model.classifier.predict_margin(model.builder.vectorize(test))
    recon = expl.expected_value + expl.values.sum(axis=1)
    np.testing.assert_allclose(recon, margins, atol=1e-8)


def test_unfitted_model_raises(tiny_builder):
    model = NBMIntegrityModel(tiny_builder)
    with pytest.raises(RuntimeError):
        model.predict_proba([])


def test_fit_empty_raises(tiny_builder, tiny_dataset):
    model = NBMIntegrityModel(tiny_builder)
    with pytest.raises(ValueError):
        model.fit(tiny_dataset, train_idx=np.array([], dtype=np.int64))


def test_ablation_full_dataset_beats_challenges_only(tiny_world, tiny_builder):
    # Paper Fig. 7: adding changes + synthetic labels improves holdout AUC.
    full = build_dataset(tiny_world)
    challenges_only = build_dataset(
        tiny_world, use_changes=False, use_synthetic=False
    )
    split_full = state_holdout_split(full)
    model_full = NBMIntegrityModel(tiny_builder, params=tiny_world.config.model).fit(
        full, split_full.train_idx
    )
    auc_full = model_full.evaluate(full, split_full).auc

    split_co = state_holdout_split(challenges_only)
    model_co = NBMIntegrityModel(tiny_builder, params=tiny_world.config.model).fit(
        challenges_only, split_co.train_idx
    )
    # Evaluate the challenges-only model on the full dataset's holdout for
    # a like-for-like comparison.
    auc_co = model_co.evaluate(full, split_full).auc
    assert auc_full > auc_co - 0.02  # full should not be (meaningfully) worse


# -- reports ------------------------------------------------------------------


def test_slice_report_percentages_sum(tiny_dataset, tiny_model):
    model, split = tiny_model
    report = slice_report(model, split.test(tiny_dataset)[:300], "sample")
    assert sum(report.class_pct.values()) == pytest.approx(100.0)
    assert 0.0 <= report.accuracy <= 1.0


def test_slice_report_empty_raises(tiny_model):
    model, _ = tiny_model
    with pytest.raises(ValueError):
        slice_report(model, [], "empty")


def test_technology_reports_structure(tiny_dataset, tiny_model):
    model, split = tiny_model
    reports = technology_reports(model, tiny_dataset, split, min_slice=10)
    assert reports
    for report in reports:
        assert "Ookla (Dev/Loc)" in report.class_feature_means["TN"]


def test_tn_class_has_higher_ookla_than_tp(tiny_dataset, tiny_model):
    # Paper Table 7: correctly-valid claims show Ookla density > 1 while
    # correctly-suspicious claims show the lowest density.
    model, split = tiny_model
    reports = technology_reports(model, tiny_dataset, split, min_slice=50)
    checked = 0
    for report in reports:
        tn = report.class_feature_means["TN"]["Ookla (Dev/Loc)"]
        tp = report.class_feature_means["TP"]["Ookla (Dev/Loc)"]
        if not (np.isnan(tn) or np.isnan(tp)):
            assert tn > tp
            checked += 1
    assert checked >= 1


def test_state_reports_structure(tiny_dataset, tiny_model):
    model, split = tiny_model
    reports = state_reports(model, tiny_dataset, split, min_slice=30)
    assert reports
    names = {r.slice_name for r in reports}
    assert all(len(n) == 2 for n in names)  # state abbreviations


# -- case study ---------------------------------------------------------------


@pytest.mark.slow
def test_jcc_case_study_detects_fabricated_region():
    result = run_jcc_case_study(tiny(seed=7))
    assert result.separation_auc > 0.85
    assert result.detection_rate > 0.8
    assert result.detection_rate > result.false_alarm_rate
    assert "OH" in result.holdout_states
    assert "fabricated" in result.render_map()
