"""Tests for dataset assembly: labels, balancing, likely-served, splits."""

import numpy as np
import pytest

from repro.core import build_dataset
from repro.dataset import (
    LabelledDataset,
    LabelSource,
    Observation,
    fcc_adjudicated_split,
    likely_served_claims,
    random_observation_split,
    state_holdout_split,
    train_validation_split,
)


def _obs(pid=1, cell=10, tech=40, state="OH", unserved=0, source=LabelSource.CHALLENGE, fcc=False):
    return Observation(pid, cell, tech, state, unserved, source, fcc)


# -- LabelledDataset mechanics -------------------------------------------------


def test_dataset_deduplicates_first_label_wins():
    a = _obs(unserved=1, source=LabelSource.CHALLENGE)
    b = _obs(unserved=0, source=LabelSource.SYNTHETIC)
    ds = LabelledDataset([a, b])
    assert len(ds) == 1
    assert ds[0].unserved == 1


def test_dataset_composition_fractions():
    ds = LabelledDataset(
        [
            _obs(cell=1, source=LabelSource.CHALLENGE),
            _obs(cell=2, source=LabelSource.CHANGE),
            _obs(cell=3, source=LabelSource.SYNTHETIC),
            _obs(cell=4, source=LabelSource.SYNTHETIC),
        ]
    )
    comp = ds.composition()
    assert comp[LabelSource.SYNTHETIC] == pytest.approx(0.5)
    assert sum(comp.values()) == pytest.approx(1.0)


def test_dataset_filter_and_groupings():
    ds = LabelledDataset([_obs(cell=1, state="OH"), _obs(cell=2, state="NE", pid=2)])
    assert len(ds.filter(lambda o: o.state == "NE")) == 1
    assert set(ds.by_state()) == {"OH", "NE"}
    assert set(ds.by_provider()) == {1, 2}


# -- full pipeline dataset ----------------------------------------------------


def test_built_dataset_balanced(tiny_dataset):
    assert 0.35 <= tiny_dataset.class_balance() <= 0.65


def test_built_dataset_has_all_three_sources(tiny_dataset):
    comp = tiny_dataset.composition()
    assert all(comp[src] > 0.05 for src in LabelSource)


def test_built_dataset_excludes_satellite(tiny_world, tiny_dataset):
    satellite = {p.provider_id for p in tiny_world.universe.providers if p.is_satellite}
    assert not any(obs.provider_id in satellite for obs in tiny_dataset)


def test_ablation_datasets_nest(tiny_world):
    only_challenges = build_dataset(
        tiny_world, use_changes=False, use_synthetic=False
    )
    with_changes = build_dataset(tiny_world, use_synthetic=False)
    assert len(with_changes) > len(only_challenges)
    assert all(
        obs.source in (LabelSource.CHALLENGE, LabelSource.CHANGE)
        for obs in with_changes
    )


def test_unbalanced_challenge_dataset_skews_unserved(tiny_world):
    ds = build_dataset(tiny_world, use_synthetic=False)
    # Challenge/change labels overwhelmingly mark claims unserved (the
    # imbalance the paper's balancing step corrects).
    assert ds.class_balance() > 0.6


def test_synthetic_labels_are_served(tiny_dataset):
    assert all(
        obs.unserved == 0
        for obs in tiny_dataset
        if obs.source is LabelSource.SYNTHETIC
    )


def test_change_labels_are_unserved(tiny_dataset):
    assert all(
        obs.unserved == 1 for obs in tiny_dataset if obs.source is LabelSource.CHANGE
    )


def test_likely_served_sorted_by_score(tiny_world):
    pairs = likely_served_claims(
        tiny_world.table, tiny_world.coverage_scores, tiny_world.localization
    )
    scores = [s for _, s in pairs]
    assert scores == sorted(scores, reverse=True)
    assert all(s >= 1.0 for s in scores)


def test_likely_served_requires_mlab_attribution(tiny_world):
    pairs = likely_served_claims(
        tiny_world.table, tiny_world.coverage_scores, tiny_world.localization
    )
    for (pid, cell, _tech), _score in pairs[:100]:
        assert cell in tiny_world.localization.cells_by_provider[pid]


def test_localization_drops_wide_radius(tiny_world):
    assert tiny_world.localization.n_dropped_radius > 0


# -- splits --------------------------------------------------------------------


def test_random_split_partitions(tiny_dataset):
    split = random_observation_split(tiny_dataset, test_fraction=0.1, seed=0)
    assert split.train_idx.size + split.test_idx.size == len(tiny_dataset)
    assert not set(split.train_idx) & set(split.test_idx)
    assert split.test_idx.size == pytest.approx(0.1 * len(tiny_dataset), rel=0.05)


def test_random_split_deterministic(tiny_dataset):
    a = random_observation_split(tiny_dataset, seed=5)
    b = random_observation_split(tiny_dataset, seed=5)
    np.testing.assert_array_equal(a.test_idx, b.test_idx)


def test_random_split_validates_fraction(tiny_dataset):
    with pytest.raises(ValueError):
        random_observation_split(tiny_dataset, test_fraction=0.0)


def test_fcc_split_test_set_all_adjudicated(tiny_dataset):
    split = fcc_adjudicated_split(tiny_dataset, seed=0)
    assert all(tiny_dataset[i].fcc_adjudicated for i in split.test_idx)


def test_fcc_split_requires_adjudicated():
    ds = LabelledDataset([_obs()])
    with pytest.raises(ValueError):
        fcc_adjudicated_split(ds)


def test_state_split_excludes_states_from_training(tiny_dataset):
    split = state_holdout_split(tiny_dataset)
    holdout = {"NE", "GA", "OK", "MO", "IN", "SC"}
    assert all(tiny_dataset[i].state in holdout for i in split.test_idx)
    assert all(tiny_dataset[i].state not in holdout for i in split.train_idx)


def test_state_split_unknown_state():
    ds = LabelledDataset([_obs(state="OH")])
    with pytest.raises(ValueError):
        state_holdout_split(ds, ("NE",))


def test_train_validation_split(tiny_dataset):
    split = random_observation_split(tiny_dataset, seed=0)
    train, val = train_validation_split(split, validation_fraction=0.2, seed=0)
    assert not set(train) & set(val)
    assert set(train) | set(val) == set(split.train_idx)


def test_provider_test_counts_matches_scalar(tiny_world):
    import numpy as np

    localization = tiny_world.localization
    keys = list(localization.test_counts.keys())[:40]
    # Mix of real (provider, cell) pairs and misses.
    pids = np.array([k[0] for k in keys] + [-5, 10**6], dtype=np.int64)
    cells = np.array([k[1] for k in keys] + [123, 456], dtype=np.uint64)
    out = localization.provider_test_counts(pids, cells)
    expected = [
        localization.provider_test_count(int(p), int(c))
        for p, c in zip(pids.tolist(), cells.tolist())
    ]
    assert out.tolist() == expected
    assert out[-2:].tolist() == [0, 0]
