"""repro.enrich: truth map, overstatement semantics, priority surface.

Three layers under one roof, mirroring the subsystem's data path:

* **Semantics** — Hypothesis properties over ``overstatement_ratios``
  (NaN = no evidence, 0.0 = genuine understatement, never a silent
  sentinel) and finiteness of the feature block they feed.
* **Truth map** — aggregation agrees with the MLab localization it
  mirrors, and the persisted bundle round-trips bitwise (NaN included)
  through the mmap load path.
* **Enriched vectorize / priority** — the enriched builder appends the
  block behind a feature-set version bump without perturbing a single
  base byte, and the audit-priority table pages every rank exactly once
  through ``GET /v2/analytics/priority``.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import mmap_backed
from repro.core import enrichment_from_world, make_feature_builder
from repro.enrich import (
    ENRICHED_FEATURE_SET_VERSION,
    ChallengeJoin,
    Enrichment,
    TruthMap,
    build_priority,
    overstatement_ratios,
)
from repro.enrich.overstatement import BASE_FEATURE_SET_VERSION, ENRICH_FEATURES
from repro.fcc.states import STATES


@pytest.fixture(scope="module")
def enrichment(tiny_world):
    return enrichment_from_world(tiny_world)


@pytest.fixture(scope="module")
def enriched_builder(tiny_world, enrichment):
    return make_feature_builder(tiny_world, enrichment=enrichment)


# -- overstatement semantics (property-based) ---------------------------------


@given(
    claimed=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    measured=st.floats(allow_nan=True, allow_infinity=True, width=64),
)
@settings(max_examples=200, deadline=None)
def test_overstatement_scalar_semantics(claimed, measured):
    ratio = overstatement_ratios([claimed], [measured])[0]
    if not np.isfinite(measured) or measured <= 0.0:
        # No evidence (or undefined ratio): NaN, never inf, never 0.0.
        assert np.isnan(ratio)
    else:
        assert ratio == claimed / measured


@given(
    pairs=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            st.floats(allow_nan=True, allow_infinity=True, width=64),
        ),
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_overstatement_vector_matches_scalar(pairs):
    claimed = np.array([p[0] for p in pairs])
    measured = np.array([p[1] for p in pairs])
    out = overstatement_ratios(claimed, measured)
    assert out.shape == claimed.shape and out.dtype == np.float64
    expected = np.array(
        [overstatement_ratios([c], [m])[0] for c, m in pairs]
    ).reshape(out.shape)
    np.testing.assert_array_equal(out, expected)
    # NaN exactly where the measurement carries no evidence.
    no_evidence = ~(np.isfinite(measured) & (measured > 0.0))
    np.testing.assert_array_equal(np.isnan(out), no_evidence)


def test_overstatement_zero_claim_is_zero_not_missing():
    out = overstatement_ratios([0.0, 0.0], [25.0, np.nan])
    assert out[0] == 0.0
    assert np.isnan(out[1])


# -- truth map ----------------------------------------------------------------


def test_truthmap_matches_localization_counts(enrichment, tiny_world):
    """Tile test counts equal the attribution pipeline's, key for key."""
    tm = enrichment.truthmap
    counts = tiny_world.localization.test_counts
    assert len(tm) == len(counts) > 0
    for row in range(len(tm)):
        key = (int(tm.provider_id[row]), int(tm.cell[row]))
        assert tm.n_tests[row] == counts[key]


def test_truthmap_sorted_unique_and_directionally_coded(enrichment):
    tm = enrichment.truthmap
    keys = np.stack([tm.provider_id, tm.cell.astype(np.int64)], axis=1)
    assert np.all(
        (keys[1:, 0] > keys[:-1, 0])
        | ((keys[1:, 0] == keys[:-1, 0]) & (keys[1:, 1] > keys[:-1, 1]))
    )
    assert np.all(tm.n_tests >= 1)
    # Speed columns are NaN (unmeasured) or strictly positive — a 0.0
    # would be a fabricated measurement.
    for column in (tm.median_down, tm.p90_down, tm.median_up, tm.p90_up):
        assert np.all(np.isnan(column) | (column > 0.0))


def test_truthmap_positions_hit_and_miss(enrichment):
    tm = enrichment.truthmap
    rows = np.arange(0, len(tm), max(1, len(tm) // 50))
    pos = tm.positions(tm.provider_id[rows], tm.cell[rows])
    np.testing.assert_array_equal(pos, rows)
    miss = tm.positions(np.array([-7]), np.array([3], dtype=np.uint64))
    assert miss[0] == -1


def test_truthmap_save_load_roundtrip(enrichment, tmp_path):
    """The persisted bundle reloads bitwise (NaN included) and mmap-backed."""
    tm = enrichment.truthmap
    root = str(tmp_path / "truthmap")
    tm.save(root)
    loaded = TruthMap.load(root)
    assert len(loaded) == len(tm)
    for name in tm.export_arrays():
        fresh = getattr(loaded, name)
        np.testing.assert_array_equal(fresh, getattr(tm, name))
        assert mmap_backed(fresh)
    rows = np.arange(len(tm))
    np.testing.assert_array_equal(
        loaded.positions(tm.provider_id, tm.cell), rows
    )


def test_truthmap_load_rejects_foreign_and_missing(enrichment, tmp_path):
    with pytest.raises(FileNotFoundError):
        TruthMap.load(str(tmp_path / "nowhere"))
    root = str(tmp_path / "bundle")
    enrichment.truthmap.save(root)
    manifest_path = f"{root}/manifest.json"
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    manifest["kind"] = "claim-shards"
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh)
    with pytest.raises(ValueError, match="not a truth map"):
        TruthMap.load(root)


def test_truthmap_from_arrays_validates_shape(enrichment):
    arrays = dict(enrichment.truthmap.export_arrays())
    arrays["n_tests"] = arrays["n_tests"][:-1]
    with pytest.raises(ValueError, match="n_tests"):
        TruthMap.from_arrays(arrays)


# -- challenge join -----------------------------------------------------------


def test_challenge_join_counts_match_records(enrichment, tiny_world):
    join = enrichment.challenges
    assert join is not None and len(join) > 0
    filed: dict[tuple[int, int], int] = {}
    upheld: dict[tuple[int, int], int] = {}
    for record in tiny_world.challenges:
        key = (record.provider_id, record.cell)
        filed[key] = filed.get(key, 0) + 1
        if record.succeeded:
            upheld[key] = upheld.get(key, 0) + 1
    assert len(join) == len(filed)
    got_filed, got_upheld = join.counts(join.provider_id, join.cell)
    for i in range(len(join)):
        key = (int(join.provider_id[i]), int(join.cell[i]))
        assert got_filed[i] == filed[key]
        assert got_upheld[i] == upheld.get(key, 0)
    assert np.all(got_upheld <= got_filed)


def test_challenge_join_zero_on_miss(enrichment):
    join = enrichment.challenges
    filed, upheld = join.counts(
        np.array([-3, int(join.provider_id[0])]),
        np.array([9, int(join.cell[0])], dtype=np.uint64),
    )
    assert filed[0] == 0 and upheld[0] == 0
    assert filed[1] == join.filed[0]


def test_challenge_join_empty_records():
    join = ChallengeJoin.from_records([])
    assert len(join) == 0
    filed, upheld = join.counts(np.array([1]), np.array([2], dtype=np.uint64))
    assert filed[0] == 0 and upheld[0] == 0


# -- enrichment feature block -------------------------------------------------


def test_feature_columns_always_finite(enrichment):
    """Missing tiles and NaN directions never leak into the block."""
    tm = enrichment.truthmap
    n = min(200, len(tm))
    provider_id = np.r_[tm.provider_id[:n], [-5, -6]]
    cell = np.r_[tm.cell[:n], np.array([1, 2], dtype=np.uint64)]
    claimed = np.full(provider_id.size, 500.0)
    X = enrichment.feature_columns(provider_id, cell, claimed, claimed / 10)
    assert X.shape == (provider_id.size, len(ENRICH_FEATURES))
    assert np.all(np.isfinite(X))
    # The two probe pairs have no tile: indicator 0, everything else 0.
    np.testing.assert_array_equal(X[n:], 0.0)
    np.testing.assert_array_equal(X[:n, 4], 1.0)


def test_feature_columns_log_ratio_matches_tile(enrichment):
    tm = enrichment.truthmap
    measured = np.flatnonzero(np.isfinite(tm.median_down))[:50]
    claimed = np.full(measured.size, 300.0)
    X = enrichment.feature_columns(
        tm.provider_id[measured], tm.cell[measured], claimed, claimed
    )
    expected = np.log2((claimed + 1.0) / (tm.median_down[measured] + 1.0))
    np.testing.assert_array_equal(X[:, 0], expected)
    np.testing.assert_array_equal(X[:, 2], tm.median_down[measured])
    np.testing.assert_array_equal(X[:, 3], tm.n_tests[measured])


def test_feature_columns_without_challenges(enrichment):
    bare = Enrichment(enrichment.truthmap, challenges=None)
    tm = enrichment.truthmap
    X = bare.feature_columns(
        tm.provider_id[:20], tm.cell[:20], np.full(20, 100.0), np.full(20, 10.0)
    )
    np.testing.assert_array_equal(X[:, 5:], 0.0)


# -- enriched FeatureBuilder --------------------------------------------------


def test_enriched_builder_names_version_and_base_prefix(
    tiny_builder, enriched_builder, tiny_dataset
):
    base_dim = tiny_builder.n_features
    assert enriched_builder.n_features == base_dim + len(ENRICH_FEATURES)
    assert enriched_builder.feature_names[base_dim:] == list(ENRICH_FEATURES)
    assert tiny_builder.feature_set_version == BASE_FEATURE_SET_VERSION
    assert enriched_builder.feature_set_version == ENRICHED_FEATURE_SET_VERSION
    obs = list(tiny_dataset)[:200]
    enriched = enriched_builder.vectorize(obs)
    # The enrichment block appends; base columns stay bitwise untouched.
    np.testing.assert_array_equal(
        enriched[:, :base_dim], tiny_builder.vectorize(obs)
    )
    assert np.all(np.isfinite(enriched))


def test_enriched_vectorize_batched_equals_row_by_row(
    tiny_dataset, enriched_builder
):
    """Columnar enriched vectorize() == stacked vectorize_one(), bitwise."""
    obs = list(tiny_dataset)[:150]
    batched = enriched_builder.vectorize(obs)
    rows = np.vstack([enriched_builder.vectorize_one(o) for o in obs])
    np.testing.assert_array_equal(batched, rows)


def test_encoder_state_refuses_feature_set_mismatch(
    tiny_builder, enriched_builder
):
    """A base-trained artifact must not restore into an enriched builder."""
    manifest, arrays = tiny_builder.export_encoder_state()
    assert manifest["feature_set_version"] == BASE_FEATURE_SET_VERSION
    with pytest.raises(ValueError, match="feature-set version"):
        enriched_builder.restore_encoder_state(manifest, arrays)
    manifest2, arrays2 = enriched_builder.export_encoder_state()
    with pytest.raises(ValueError, match="feature-set version"):
        tiny_builder.restore_encoder_state(manifest2, arrays2)
    # Pre-enrichment manifests carry no stamp and are implicitly base.
    legacy = dict(manifest)
    legacy.pop("feature_set_version")
    tiny_builder.restore_encoder_state(legacy, arrays)


# -- audit priority -----------------------------------------------------------


def test_priority_table_structure(tiny_score_store, enrichment):
    table = build_priority(tiny_score_store, enrichment=enrichment)
    assert table.components == ("suspicion", "overstatement", "challenges")
    assert len(table) > 1
    assert np.all(np.diff(table.priority) <= 0.0)
    assert np.all((table.priority >= 0.0) & (table.priority <= 100.0))
    assert int(table.n_claims.sum()) == len(tiny_score_store)
    assert np.all(table.challenges_upheld <= table.challenges_filed)
    record = table.record(0)
    assert record["rank"] == 1
    assert record["state"] in {s.abbr for s in STATES}


def test_priority_without_enrichment_degrades_to_suspicion(tiny_score_store):
    table = build_priority(tiny_score_store)
    assert table.components == ("suspicion",)
    np.testing.assert_array_equal(table.mean_overstatement_log2, 0.0)
    np.testing.assert_array_equal(table.challenges_filed, 0)
    # Weights renormalize: suspicion alone still spans the percentile scale.
    assert table.priority[0] == pytest.approx(100.0)


def test_priority_page_walk_covers_every_rank_once(tiny_score_store, enrichment):
    table = build_priority(tiny_score_store, enrichment=enrichment)
    seen = []
    after = 0
    while True:
        records, next_rank, total = table.page(after_rank=after, limit=3)
        assert total == len(table)
        seen.extend(r["rank"] for r in records)
        if next_rank is None:
            break
        after = next_rank
    assert seen == list(range(1, len(table) + 1))


def test_priority_page_state_filter(tiny_score_store, enrichment):
    table = build_priority(tiny_score_store, enrichment=enrichment)
    idx = int(table.state_idx[0])
    records, _next, total = table.page(limit=10_000, state_idx=idx)
    expected = [
        table.record(r)
        for r in np.flatnonzero(table.state_idx == np.int16(idx))
    ]
    assert records == expected and total == len(expected)
    # Ranks are unfiltered positions, so they stay sparse under a filter.
    assert [r["rank"] for r in records] == sorted(r["rank"] for r in records)


# -- GET /v2/analytics/priority ----------------------------------------------


@pytest.fixture(scope="module")
def priority_served(tiny_model, tiny_score_store, enrichment, ephemeral_server):
    from repro.serve import AuditService

    model, _split = tiny_model
    service = AuditService.from_model(
        model, store=tiny_score_store, enrichment=enrichment
    )
    with ephemeral_server(service) as server:
        yield server, service
    service.close()


def _json(server, path):
    import http.client

    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def test_v2_priority_walk_matches_table(priority_served, tiny_score_store):
    server, service = priority_served
    table = service.priority_table()
    items = []
    path = "/v2/analytics/priority?limit=3"
    while True:
        status, doc = _json(server, path)
        assert status == 200
        assert doc["model_version"] == "default"
        assert doc["total"] == len(table)
        items.extend(doc["items"])
        if doc["next_cursor"] is None:
            break
        path = f"/v2/analytics/priority?limit=3&cursor={doc['next_cursor']}"
    assert items == [table.record(r) for r in range(len(table))]


def test_v2_priority_state_filter(priority_served):
    server, service = priority_served
    table = service.priority_table()
    state = STATES[int(table.state_idx[0])].abbr
    status, doc = _json(server, f"/v2/analytics/priority?state={state}&limit=500")
    assert status == 200
    assert doc["items"] and all(r["state"] == state for r in doc["items"])
    assert doc["total"] == sum(
        1 for r in range(len(table)) if table.record(r)["state"] == state
    )


def test_v2_priority_rejects_foreign_cursor_and_bad_limit(priority_served):
    server, _service = priority_served
    # A claims-walk cursor carries a different filter fingerprint.
    status, doc = _json(server, "/v2/claims?limit=2")
    assert status == 200
    claims_cursor = doc["next_cursor"]
    status, doc = _json(
        server, f"/v2/analytics/priority?cursor={claims_cursor}"
    )
    assert status == 400 and "does not match the request filters" in doc["error"]
    status, doc = _json(server, "/v2/analytics/priority?limit=0")
    assert status == 400 and "limit" in doc["error"]
    status, doc = _json(server, "/v2/analytics/priority?state=NOWHERE")
    assert status == 400 and "unknown state" in doc["error"]
