"""Tests for BDC filings and the availability table."""

import numpy as np
import pytest

from repro.fcc.bdc import NBM_SPEED_FLOORS, generate_filings


def test_filings_nonempty(small_filings):
    assert len(small_filings) > 1000


def test_truly_served_consistent_with_footprints(small_filings, small_universe):
    # Rows in overclaimed hexes must be marked unserved and vice versa.
    idx = np.random.default_rng(0).choice(len(small_filings), 300, replace=False)
    for row in idx:
        pid = int(small_filings.provider_id[row])
        tech = int(small_filings.technology[row])
        cell = int(small_filings.cell[row])
        state = small_filings.state_abbr(row)
        fp = small_universe.footprint(pid, state, tech)
        assert fp is not None
        assert cell in fp.claimed_cells
        assert bool(small_filings.truly_served[row]) == (cell in fp.true_cells)


def test_published_speed_floors(small_filings):
    down = small_filings.published_download()
    up = small_filings.published_upload()
    assert not ((down > 0) & (down < NBM_SPEED_FLOORS[0])).any()
    assert not ((up > 0) & (up < NBM_SPEED_FLOORS[1])).any()


def test_claims_unique_per_bsl_provider_tech(small_filings):
    keys = np.stack(
        [small_filings.provider_id, small_filings.bsl_id, small_filings.technology]
    )
    # View rows as tuples and check uniqueness.
    uniq = {tuple(keys[:, i]) for i in range(keys.shape[1])}
    assert len(uniq) == len(small_filings)


def test_unique_claims_hex_level(small_filings):
    claims = small_filings.unique_claims()
    assert len(claims) < len(small_filings)
    assert all(len(k) == 3 for k in claims)


def test_rows_for_claim_roundtrip(small_filings):
    claims = small_filings.unique_claims()
    key = claims[len(claims) // 2]
    rows = small_filings.rows_for_claim(key)
    assert rows.size >= 1
    assert (small_filings.provider_id[rows] == key[0]).all()
    assert (small_filings.cell[rows] == np.uint64(key[1])).all()
    assert (small_filings.technology[rows] == key[2]).all()


def test_provider_location_counts(small_filings, small_universe):
    counts = small_filings.provider_location_counts()
    assert sum(counts.values()) == len(small_filings)
    majors = {p.provider_id for p in small_universe.majors}
    major_median = np.median([counts.get(pid, 0) for pid in majors])
    locals_ = [
        counts.get(p.provider_id, 0)
        for p in small_universe.terrestrial
        if p.size_class == "local"
    ]
    assert major_median > np.median(locals_)


def test_subset_filters_rows(small_filings):
    mask = small_filings.technology == 50
    sub = small_filings.subset(mask)
    assert len(sub) == int(mask.sum())
    if len(sub):
        assert (sub.technology == 50).all()


def test_determinism(small_fabric, small_universe):
    a = generate_filings(small_fabric, small_universe, seed=5)
    b = generate_filings(small_fabric, small_universe, seed=5)
    np.testing.assert_array_equal(a.bsl_id, b.bsl_id)
    np.testing.assert_array_equal(a.truly_served, b.truly_served)
