"""Property tests: the columnar claim store vs. the dict-based reference.

The columnar path (``AvailabilityTable.columnar()`` + vectorized
``positions`` lookups) must agree *exactly* with the per-key dict path
(``FeatureBuilder._precompute_claim_attrs``) on randomized tables,
including keys absent from the table.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fcc.bdc import AvailabilityTable
from repro.features.vectorize import FeatureBuilder


def _random_table(draw) -> AvailabilityTable:
    n = draw(st.integers(1, 60))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    # Small key universes force plenty of per-claim aggregation.
    provider_id = rng.integers(1, 6, size=n).astype(np.int64)
    cell = rng.integers(2**63, 2**63 + 8, size=n, dtype=np.uint64)
    technology = rng.choice([10, 40, 50], size=n).astype(np.int16)
    return AvailabilityTable(
        provider_id=provider_id,
        bsl_id=np.arange(n, dtype=np.int64),
        technology=technology,
        cell=cell,
        state_idx=np.zeros(n, dtype=np.int16),
        max_download_mbps=rng.choice([0.0, 5.0, 25.0, 100.0, 940.0], size=n),
        max_upload_mbps=rng.choice([0.0, 0.5, 3.0, 20.0, 35.0], size=n),
        low_latency=rng.random(n) < 0.5,
        truly_served=rng.random(n) < 0.5,
    )


@settings(deadline=None, max_examples=60)
@given(st.data())
def test_columnar_aggregates_match_dict_path(data):
    table = _random_table(data.draw)
    columns = table.columnar()
    reference = FeatureBuilder._precompute_claim_attrs(table)

    assert len(columns) == len(reference)
    for row in range(len(columns)):
        key = columns.key_at(row)
        count, down, up, lowlat = reference[key]
        assert int(columns.claimed_count[row]) == count
        assert float(columns.max_download_mbps[row]) == down
        assert float(columns.max_upload_mbps[row]) == up
        assert bool(columns.low_latency[row]) == lowlat


@settings(deadline=None, max_examples=60)
@given(st.data())
def test_columnar_positions_match_dict_lookups(data):
    table = _random_table(data.draw)
    columns = table.columnar()
    reference = FeatureBuilder._precompute_claim_attrs(table)

    # Query a mix of present keys and near-miss absent keys (unknown
    # provider / cell / technology components and combinations).
    m = data.draw(st.integers(1, 40))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    q_provider = rng.integers(1, 8, size=m).astype(np.int64)  # 6,7 never filed
    q_cell = rng.integers(2**63, 2**63 + 10, size=m, dtype=np.uint64)
    q_tech = rng.choice([10, 40, 50, 60], size=m).astype(np.int64)

    pos = columns.positions(q_provider, q_cell, q_tech)
    for i in range(m):
        key = (int(q_provider[i]), int(q_cell[i]), int(q_tech[i]))
        if key in reference:
            row = int(pos[i])
            assert row >= 0
            assert columns.key_at(row) == key
        else:
            assert pos[i] == -1


def test_columnar_is_cached(small_filings):
    assert small_filings.columnar() is small_filings.columnar()


def test_columnar_matches_unique_claims_order(small_filings):
    columns = small_filings.columnar()
    claims = small_filings.unique_claims()
    assert len(columns) == len(claims)
    assert [columns.key_at(i) for i in range(len(columns))] == claims
