"""Tests for the challenge-process simulator (Tables 2-3, Fig. 1-2)."""

from collections import Counter

import numpy as np
import pytest

from repro.fcc import (
    ChallengeConfig,
    ChallengeOutcome,
    ChallengeReason,
    outcome_distribution,
    reason_distribution,
    simulate_challenges,
)


def test_challenges_generated(small_challenges):
    assert len(small_challenges) > 100


def test_outcome_succeeded_semantics():
    assert ChallengeOutcome.PROVIDER_CONCEDED.succeeded
    assert ChallengeOutcome.SERVICE_CHANGED.succeeded
    assert ChallengeOutcome.FCC_UPHELD.succeeded
    assert not ChallengeOutcome.CHALLENGE_WITHDRAWN.succeeded
    assert not ChallengeOutcome.FCC_OVERTURNED.succeeded


def test_success_share_near_paper(small_challenges):
    # Paper Table 2: 69% of challenges succeed.
    dist = outcome_distribution(small_challenges)
    assert 55.0 <= dist["Successful"][1] <= 80.0


def test_outcome_distribution_sums(small_challenges):
    dist = outcome_distribution(small_challenges)
    assert dist["Successful"][1] + dist["Failed"][1] == pytest.approx(100.0)
    sub = sum(
        dist[o.value][1]
        for o in (
            ChallengeOutcome.PROVIDER_CONCEDED,
            ChallengeOutcome.SERVICE_CHANGED,
            ChallengeOutcome.FCC_UPHELD,
        )
    )
    assert sub == pytest.approx(dist["Successful"][1], abs=1e-9)


def test_reason_distribution_shape(small_challenges):
    # Paper Table 3: Technology Unavailable ~55%, Speeds Unavailable ~43%.
    dist = reason_distribution(small_challenges)
    top = list(dist.items())
    assert top[0][0] == ChallengeReason.TECHNOLOGY_UNAVAILABLE.value
    assert 45.0 <= top[0][1][1] <= 65.0
    assert top[1][0] == ChallengeReason.SPEEDS_UNAVAILABLE.value
    assert 33.0 <= top[1][1][1] <= 53.0


def test_state_concentration(small_challenges):
    # Paper Fig. 2: ten states carry ~90% of challenges.
    counts = Counter(c.state for c in small_challenges if c.major_release == 0)
    total = sum(counts.values())
    top10 = sum(v for _, v in counts.most_common(10))
    assert top10 / total > 0.75


def test_second_major_release_tiny(small_challenges):
    # Paper Fig. 1: the next release saw ~two orders of magnitude fewer.
    first = sum(1 for c in small_challenges if c.major_release == 0)
    second = sum(1 for c in small_challenges if c.major_release == 1)
    assert second < 0.05 * first


def test_fcc_adjudicated_flag_consistent(small_challenges):
    for record in small_challenges:
        if record.outcome in (ChallengeOutcome.FCC_UPHELD, ChallengeOutcome.FCC_OVERTURNED):
            assert record.fcc_adjudicated
        if record.outcome is ChallengeOutcome.PROVIDER_CONCEDED:
            assert not record.fcc_adjudicated


def test_fcc_adjudication_takes_longer(small_challenges):
    adjudicated = [c.resolved_release for c in small_challenges if c.fcc_adjudicated]
    conceded = [
        c.resolved_release
        for c in small_challenges
        if c.outcome is ChallengeOutcome.PROVIDER_CONCEDED
    ]
    assert np.mean(adjudicated) > np.mean(conceded)


def test_challenges_reference_real_claims(small_challenges, small_filings):
    claim_set = set(small_filings.unique_claims())
    for record in small_challenges[:200]:
        assert record.claim_key in claim_set


def test_challenge_ids_unique(small_challenges):
    ids = [c.challenge_id for c in small_challenges]
    assert len(set(ids)) == len(ids)


def test_determinism(small_filings, small_universe):
    a = simulate_challenges(small_filings, small_universe, seed=11)
    b = simulate_challenges(small_filings, small_universe, seed=11)
    assert [(c.claim_key, c.outcome) for c in a] == [(c.claim_key, c.outcome) for c in b]


def test_config_validation():
    with pytest.raises(ValueError):
        ChallengeConfig(challenge_rate=1.5).validate()
    with pytest.raises(ValueError):
        ChallengeConfig(n_minor_releases=1).validate()


def test_wireless_draws_no_signal_reason(small_challenges):
    wireless = [c for c in small_challenges if c.technology in (70, 71)]
    wired = [c for c in small_challenges if c.technology in (10, 40, 50)]
    if wireless and wired:
        w_rate = np.mean([c.reason is ChallengeReason.NO_SIGNAL for c in wireless])
        d_rate = np.mean([c.reason is ChallengeReason.NO_SIGNAL for c in wired])
        assert w_rate >= d_rate
