"""Tests for the synthetic BSL Fabric."""

import numpy as np
import pytest

from repro.fcc import FabricConfig, generate_fabric
from repro.fcc.states import STATES, state_by_abbr
from repro.geo import hexgrid


def test_fabric_size_scales_with_population(small_fabric):
    ca = small_fabric.bsls_in_state("CA").size
    wy = small_fabric.bsls_in_state("WY").size
    assert ca > 10 * wy


def test_bsls_within_state_bounds(small_fabric):
    ne = state_by_abbr("NE")
    rows = small_fabric.bsls_in_state("NE")
    lats = small_fabric.lats[rows]
    lngs = small_fabric.lngs[rows]
    assert (lats >= ne.lat_min).all() and (lats <= ne.lat_max).all()
    assert (lngs >= ne.lng_min).all() and (lngs <= ne.lng_max).all()


def test_cells_match_coordinates(small_fabric):
    rows = small_fabric.bsls_in_state("OH")[:50]
    for row in rows:
        expected = hexgrid.latlng_to_cell(
            float(small_fabric.lats[row]), float(small_fabric.lngs[row]), 8
        )
        assert int(small_fabric.cells[row]) == expected


def test_median_bsls_per_cell_near_four():
    # Paper Fig. 9: median of 4 BSLs per res-8 cell.  Use the default
    # (calibrated) config at reduced scale.
    fabric = generate_fabric(FabricConfig(locations_per_million=800), seed=7)
    dist = fabric.bsls_per_cell_distribution()
    assert 2 <= np.median(dist) <= 6


def test_bsl_row_view(small_fabric):
    bsl = small_fabric.bsl(0)
    assert bsl.bsl_id == 0
    assert bsl.building_type in ("residential", "business", "cai")
    assert bsl.unit_count >= 1
    assert int(small_fabric.cells[0]) == bsl.cell


def test_bsl_out_of_range(small_fabric):
    with pytest.raises(IndexError):
        small_fabric.bsl(len(small_fabric))


def test_bsls_in_cell_index_consistent(small_fabric):
    cell = int(small_fabric.cells[123])
    rows = small_fabric.bsls_in_cell(cell)
    assert 123 in rows
    assert (small_fabric.cells[rows] == np.uint64(cell)).all()


def test_unknown_cell_returns_empty(small_fabric):
    assert small_fabric.bsls_in_cell(12345).size == 0


def test_state_of_cell(small_fabric):
    cell = int(small_fabric.cells[0])
    assert small_fabric.state_of_cell(cell) == small_fabric.bsl(0).state
    assert small_fabric.state_of_cell(999) is None


def test_towns_generated_for_every_populated_state(small_fabric):
    for abbr in ("CA", "NE", "OH", "VA"):
        assert small_fabric.towns_in_state(abbr)


def test_building_type_fractions(small_fabric):
    types = small_fabric.building_types
    business = float((types == 1).mean())
    cai = float((types == 2).mean())
    assert 0.02 < business < 0.15
    assert 0.001 < cai < 0.03


def test_determinism():
    config = FabricConfig(locations_per_million=50)
    a = generate_fabric(config, seed=9)
    b = generate_fabric(config, seed=9)
    assert len(a) == len(b)
    np.testing.assert_array_equal(a.cells, b.cells)


def test_different_seed_differs():
    config = FabricConfig(locations_per_million=50)
    a = generate_fabric(config, seed=1)
    b = generate_fabric(config, seed=2)
    assert not np.array_equal(a.lats, b.lats)


def test_config_validation():
    with pytest.raises(ValueError):
        FabricConfig(locations_per_million=0).validate()
    with pytest.raises(ValueError):
        FabricConfig(rural_fraction=1.5).validate()
    with pytest.raises(ValueError):
        FabricConfig(business_fraction=0.4, cai_fraction=0.2).validate()


def test_bsl_counts_in_cells_matches_scalar(small_fabric):
    import numpy as np

    occupied = small_fabric.occupied_cells[:50]
    unknown = [0, 2**63 + 123]
    cells = np.array(occupied + unknown, dtype=np.uint64)
    counts = small_fabric.bsl_counts_in_cells(cells)
    expected = [small_fabric.bsl_count_in_cell(int(c)) for c in cells]
    assert counts.tolist() == expected
    assert counts[-2:].tolist() == [0, 0]
    assert small_fabric.bsl_counts_in_cells(np.empty(0, dtype=np.uint64)).size == 0
