"""Tests for FRN registration data."""

import numpy as np
import pytest

from repro.fcc import build_provider_id_table
from repro.fcc.frn import perturb_address, perturb_name


def test_every_provider_has_frn_records(small_provider_table, small_universe):
    assert set(small_provider_table.provider_ids) == {
        p.provider_id for p in small_universe.providers
    }


def test_frn_count_matches_provider_frns(small_provider_table, small_universe):
    for provider in small_universe.providers:
        records = small_provider_table.frns_for_provider(provider.provider_id)
        assert {r.frn for r in records} == set(provider.frns)


def test_record_lookup_by_frn(small_provider_table):
    record = small_provider_table.records[0]
    assert small_provider_table.record_for_frn(record.frn) == record
    with pytest.raises(KeyError):
        small_provider_table.record_for_frn(-5)


def test_emails_preserved_exactly(small_provider_table, small_universe):
    # Contact email is the one clean field (the paper's strongest matcher).
    for provider in small_universe.providers[:20]:
        for record in small_provider_table.frns_for_provider(provider.provider_id):
            assert record.contact_email == provider.contact_email


def test_names_noisy_but_recognizable(small_provider_table, small_universe):
    provider = small_universe.providers[0]
    record = small_provider_table.frns_for_provider(provider.provider_id)[0]
    base = provider.name.lower().replace(" inc", "").replace(" llc", "")
    stem = base.split()[0]
    assert stem in record.company_name.lower()


def test_perturb_name_changes_format_not_identity():
    rng = np.random.default_rng(0)
    variants = {perturb_name(rng, "Acme Fiber Inc") for _ in range(30)}
    assert len(variants) > 1
    assert all("acme" in v.lower() for v in variants)


def test_perturb_address_styles():
    rng = np.random.default_rng(0)
    variants = {perturb_address(rng, "100 Main Street, Springfield, NE 68001") for _ in range(30)}
    assert len(variants) > 1
    assert any("St" in v and "Street" not in v for v in variants)
