"""Tests for provider generation and claim footprints."""

import numpy as np
import pytest

from repro.fcc import (
    MAJOR_ISPS,
    Methodology,
    ProviderConfig,
    generate_providers,
    methodology_text,
)


def test_universe_size(small_universe):
    assert len(small_universe) == 60


def test_eight_majors_present(small_universe):
    majors = small_universe.majors
    assert len(majors) == len(MAJOR_ISPS) == 8
    brands = {p.brand_name for p in majors}
    assert "Xfinity" in brands and "US Cellular" in brands


def test_satellite_providers_claim_everywhere(small_universe, small_fabric):
    satellites = [p for p in small_universe.providers if p.is_satellite]
    assert satellites
    provider = satellites[0]
    fp = small_universe.footprint(provider.provider_id, "NE", 60)
    assert fp is not None
    assert fp.claimed_cells == frozenset(small_fabric.cells_in_state("NE"))
    assert fp.overclaim_fraction == 0.0


def test_terrestrial_excludes_satellite(small_universe):
    assert all(not p.is_satellite for p in small_universe.terrestrial)
    n_sat = len(small_universe.providers) - len(small_universe.terrestrial)
    assert n_sat == small_universe.config.n_satellite


def test_provider_ids_unique(small_universe):
    ids = [p.provider_id for p in small_universe.providers]
    assert len(set(ids)) == len(ids)


def test_frns_unique_across_providers(small_universe):
    frns = [f for p in small_universe.providers for f in p.frns]
    assert len(set(frns)) == len(frns)


def test_footprint_claimed_superset_of_true(small_universe):
    for fp in small_universe.footprints.values():
        assert fp.true_cells <= fp.claimed_cells


def test_overclaim_tracks_intended_rate(small_universe):
    # Realized overclaim fractions should correlate with the provider's
    # methodology-driven intended rate.
    intended, realized = [], []
    for (pid, _, tech), fp in small_universe.footprints.items():
        provider = small_universe.provider(pid)
        if provider.is_satellite or len(fp.claimed_cells) < 30:
            continue
        intended.append(provider.overclaim_rate)
        realized.append(fp.overclaim_fraction)
    corr = np.corrcoef(intended, realized)[0, 1]
    assert corr > 0.5


def test_census_block_methodology_overclaims_most(small_universe):
    by_method: dict[Methodology, list[float]] = {}
    for p in small_universe.terrestrial:
        by_method.setdefault(p.methodology, []).append(p.overclaim_rate)
    if Methodology.CENSUS_BLOCKS in by_method and Methodology.SUBSCRIBER_ADDRESSES in by_method:
        assert np.mean(by_method[Methodology.CENSUS_BLOCKS]) > np.mean(
            by_method[Methodology.SUBSCRIBER_ADDRESSES]
        )


def test_methodology_text_consultant_identical():
    a = methodology_text(Methodology.CONSULTANT_TEMPLATE, "Acme Fiber")
    b = methodology_text(Methodology.CONSULTANT_TEMPLATE, "Zenith Cable")
    assert a == b


def test_methodology_text_mentions_provider():
    text = methodology_text(Methodology.SUBSCRIBER_ADDRESSES, "Acme Fiber")
    assert "Acme Fiber" in text


def test_consultant_clients_share_identical_filing_text(small_universe):
    texts = {
        p.methodology_text
        for p in small_universe.terrestrial
        if p.methodology is Methodology.CONSULTANT_TEMPLATE
    }
    assert len(texts) <= 1


def test_tier_lookup(small_universe):
    provider = small_universe.majors[0]
    tech = provider.technologies[0]
    tier = provider.tier_for(tech)
    assert tier.max_download_mbps > 0
    with pytest.raises(KeyError):
        provider.tier_for(61)


def test_footprints_only_in_declared_states(small_universe):
    for (pid, state, _tech) in small_universe.footprints:
        assert state in small_universe.provider(pid).states


def test_claimed_cells_union(small_universe):
    provider = small_universe.majors[0]
    cells = small_universe.claimed_cells(provider.provider_id)
    assert cells
    per_fp = small_universe.footprints_for_provider(provider.provider_id)
    assert cells == set().union(*(fp.claimed_cells for fp in per_fp.values()))


def test_unknown_provider_raises(small_universe):
    with pytest.raises(KeyError):
        small_universe.provider(-1)


def test_determinism(small_fabric):
    config = ProviderConfig(n_providers=25)
    a = generate_providers(small_fabric, config, seed=3)
    b = generate_providers(small_fabric, config, seed=3)
    assert [p.name for p in a.providers] == [p.name for p in b.providers]
    assert a.footprints.keys() == b.footprints.keys()


def test_config_validation():
    with pytest.raises(ValueError):
        ProviderConfig(n_providers=5).validate()
    with pytest.raises(ValueError):
        ProviderConfig(regional_fraction=2.0).validate()
