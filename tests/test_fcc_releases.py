"""Tests for NBM release timelines and map diffs."""

import pytest

from repro.fcc import (
    RemovalCause,
    build_release_timeline,
    diff_releases,
    infer_unarchived_changes,
)


def test_initial_release_has_all_claims(small_timeline, small_filings):
    assert small_timeline.claims_at(0) == frozenset(small_filings.unique_claims())


def test_claims_monotonically_shrink(small_timeline):
    previous = small_timeline.claims_at(0)
    for t in range(1, small_timeline.n_minor_releases + 1):
        current = small_timeline.claims_at(t)
        assert current <= previous
        previous = current


def test_successful_challenges_removed(small_timeline, small_challenges):
    final = small_timeline.final_claims
    for record in small_challenges:
        if record.major_release == 0 and record.succeeded:
            assert record.claim_key not in final


def test_failed_challenges_not_removed_by_challenge(small_timeline, small_challenges):
    # A failed challenge must never be the cause of a removal (the claim may
    # still disappear via a self-correction).
    for record in small_challenges[:300]:
        if record.major_release == 0 and not record.succeeded:
            cause = small_timeline.removal_cause(record.claim_key)
            assert cause is not RemovalCause.PUBLIC_CHALLENGE


def test_diff_releases_matches_removals(small_timeline):
    diff = diff_releases(small_timeline, 0, small_timeline.n_minor_releases)
    assert diff.removed == small_timeline.claims_at(0) - small_timeline.final_claims
    assert diff.added == frozenset()


def test_diff_rejects_reversed_range(small_timeline):
    with pytest.raises(ValueError):
        diff_releases(small_timeline, 5, 2)


def test_claims_at_bounds(small_timeline):
    with pytest.raises(ValueError):
        small_timeline.claims_at(-1)
    with pytest.raises(ValueError):
        small_timeline.claims_at(small_timeline.n_minor_releases + 1)


def test_inferred_changes_disjoint_from_public_challenges(
    small_timeline, small_challenges
):
    inferred = infer_unarchived_changes(small_timeline, small_challenges)
    publicly_removed = {
        c.claim_key for c in small_challenges if c.major_release == 0 and c.succeeded
    }
    assert not (inferred & publicly_removed)


def test_inferred_changes_exist(small_timeline, small_challenges):
    # Self-corrections should produce a meaningful pool of quiet removals
    # (paper: 185k extra observations, ~22% of the labelled data).
    inferred = infer_unarchived_changes(small_timeline, small_challenges)
    assert len(inferred) > 10


def test_censoring_of_early_removals(small_timeline, small_challenges):
    # Removals that happen before the first archived snapshot are invisible.
    all_window = infer_unarchived_changes(
        small_timeline, small_challenges, first_observed_release=0
    )
    censored = infer_unarchived_changes(
        small_timeline, small_challenges, first_observed_release=4
    )
    assert censored <= all_window


def test_determinism(small_filings, small_universe, small_challenges):
    a = build_release_timeline(small_filings, small_universe, small_challenges, seed=2)
    b = build_release_timeline(small_filings, small_universe, small_challenges, seed=2)
    assert {(e.claim, e.release_index) for e in a.removals} == {
        (e.claim, e.release_index) for e in b.removals
    }
