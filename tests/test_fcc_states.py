"""Tests for state/territory static data."""

import pytest

from repro.fcc import STATES, challenge_weights, contiguous_states, state_by_abbr
from repro.fcc.states import states_adjacent_to


def test_fifty_six_states_and_territories():
    assert len(STATES) == 56


def test_unique_abbreviations_and_fips():
    abbrs = [s.abbr for s in STATES]
    fips = [s.fips for s in STATES]
    assert len(set(abbrs)) == 56
    assert len(set(fips)) == 56


def test_lookup_by_abbr_case_insensitive():
    assert state_by_abbr("ne").name == "Nebraska"
    assert state_by_abbr("VA").name == "Virginia"


def test_lookup_unknown_raises():
    with pytest.raises(KeyError):
        state_by_abbr("ZZ")


def test_bounding_boxes_well_formed():
    for s in STATES:
        assert s.lat_min < s.lat_max, s.abbr
        assert s.lng_min < s.lng_max, s.abbr
        assert -90 <= s.lat_min and s.lat_max <= 90


def test_contiguous_excludes_offshore():
    abbrs = {s.abbr for s in contiguous_states()}
    assert "AK" not in abbrs and "HI" not in abbrs and "PR" not in abbrs
    assert "NE" in abbrs and "DC" in abbrs


def test_challenge_weights_normalized():
    weights = challenge_weights()
    assert sum(weights.values()) == pytest.approx(1.0)
    assert all(w >= 0 for w in weights.values())


def test_nebraska_has_highest_challenge_weight():
    # Paper Fig. 2: Nebraska faced the most location challenges.
    weights = challenge_weights()
    assert max(weights, key=weights.get) == "NE"


def test_top_ten_states_carry_ninety_percent():
    # Paper: "just ten states accounting for around 90% of challenges".
    weights = sorted(challenge_weights().values(), reverse=True)
    assert 0.85 <= sum(weights[:10]) <= 0.97


def test_population_positive():
    assert all(s.population_m > 0 for s in STATES)


def test_adjacency_ohio():
    neighbors = states_adjacent_to("OH")
    assert "PA" in neighbors and "WV" in neighbors
    assert "OH" not in neighbors
    assert "CA" not in neighbors
