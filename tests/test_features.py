"""Tests for Table-4 vectorization, encoders, and the text embedder."""

import numpy as np
import pytest

from repro.features import CORE_FEATURES, StateOneHot, TechnologyOneHot, TextEmbedder
from repro.geo import hexgrid


# -- embedder -----------------------------------------------------------------


def test_embedding_unit_norm():
    emb = TextEmbedder(dim=64)
    v = emb.embed("We report availability from subscriber records.")
    assert np.linalg.norm(v) == pytest.approx(1.0)


def test_identical_texts_identical_embeddings():
    emb = TextEmbedder(dim=64)
    a = emb.embed("consultant prepared filing")
    b = emb.embed("consultant prepared filing")
    np.testing.assert_array_equal(a, b)


def test_similar_texts_closer_than_different():
    emb = TextEmbedder(dim=128)
    base = emb.embed("We determine availability from engineering records of fiber routes")
    near = emb.embed("We determine availability from engineering records of fiber plant")
    far = emb.embed("Coverage is modeled with an RF propagation study and drive tests")
    assert TextEmbedder.cosine(base, near) > TextEmbedder.cosine(base, far)


def test_empty_text_embeds_to_zero():
    emb = TextEmbedder(dim=32)
    assert np.allclose(emb.embed(""), 0.0)


def test_embed_corpus_shape():
    emb = TextEmbedder(dim=16)
    out = emb.embed_corpus(["a b c", "d e f"])
    assert out.shape == (2, 16)
    assert emb.embed_corpus([]).shape == (0, 16)


def test_embedder_validates_dim():
    with pytest.raises(ValueError):
        TextEmbedder(dim=1)


# -- encoders ------------------------------------------------------------------


def test_state_onehot_roundtrip():
    enc = StateOneHot()
    v = enc.encode("NE")
    assert v.sum() == 1.0
    assert enc.feature_names[int(np.argmax(v))] == "State_NE"
    assert enc.dim == 56


def test_state_onehot_unknown():
    with pytest.raises(ValueError):
        StateOneHot().encode("ZZ")


def test_tech_onehot():
    enc = TechnologyOneHot()
    v = enc.encode(50)
    assert v.sum() == 1.0
    with pytest.raises(ValueError):
        enc.encode(99)


# -- feature builder -----------------------------------------------------------


def test_feature_names_consistent(tiny_builder):
    names = tiny_builder.feature_names
    assert len(names) == tiny_builder.n_features
    assert list(CORE_FEATURES) == names[: len(CORE_FEATURES)]
    assert len(set(names)) == len(names)


def test_vectorize_shape_and_finiteness(tiny_dataset, tiny_builder):
    obs = list(tiny_dataset)[:200]
    X = tiny_builder.vectorize(obs)
    assert X.shape == (200, tiny_builder.n_features)
    assert np.isfinite(X).all()


def test_vectorize_empty(tiny_builder):
    X = tiny_builder.vectorize([])
    assert X.shape == (0, tiny_builder.n_features)


def test_labels_match_observations(tiny_dataset, tiny_builder):
    obs = list(tiny_dataset)[:50]
    y = tiny_builder.labels(obs)
    assert y.tolist() == [o.unserved for o in obs]


def test_centroid_features_match_cell(tiny_dataset, tiny_builder):
    obs = tiny_dataset[0]
    x = tiny_builder.vectorize_one(obs)
    names = tiny_builder.feature_names
    lat = x[names.index("H3 Centroid Lat")]
    lng = x[names.index("H3 Centroid Lng")]
    clat, clng = hexgrid.cell_to_latlng(obs.cell)
    assert lat == pytest.approx(clat)
    assert lng == pytest.approx(clng)


def test_claims_pct_in_unit_interval(tiny_dataset, tiny_builder):
    obs = list(tiny_dataset)[:300]
    X = tiny_builder.vectorize(obs)
    pct = X[:, tiny_builder.feature_names.index("Location Claims Pct")]
    assert (pct >= 0).all() and (pct <= 1.0 + 1e-9).all()


def test_state_onehot_set_in_vector(tiny_dataset, tiny_builder):
    obs = tiny_dataset[0]
    x = tiny_builder.vectorize_one(obs)
    names = tiny_builder.feature_names
    assert x[names.index(f"State_{obs.state}")] == 1.0


def test_speed_features_respect_published_floors(tiny_dataset, tiny_builder):
    obs = list(tiny_dataset)[:300]
    X = tiny_builder.vectorize(obs)
    down = X[:, tiny_builder.feature_names.index("Max Adv. DL Speed (Mbps)")]
    assert not ((down > 0) & (down < 10.0)).any()


def test_vectorize_batched_equals_row_by_row(tiny_dataset, tiny_builder):
    """Columnar vectorize() must equal stacking vectorize_one() exactly."""
    obs = list(tiny_dataset)[:150]
    batched = tiny_builder.vectorize(obs)
    rows = np.vstack([tiny_builder.vectorize_one(o) for o in obs])
    np.testing.assert_array_equal(batched, rows)


def test_vectorize_batched_equals_row_by_row_single(tiny_dataset, tiny_builder):
    obs = tiny_dataset[0]
    np.testing.assert_array_equal(
        tiny_builder.vectorize([obs])[0], tiny_builder.vectorize_one(obs)
    )


def test_encoder_index_matches_encode():
    state_enc = StateOneHot()
    assert state_enc.encode("NE")[state_enc.index("NE")] == 1.0
    tech_enc = TechnologyOneHot()
    assert tech_enc.encode(50)[tech_enc.index(50)] == 1.0
    with pytest.raises(ValueError):
        state_enc.index("ZZ")
    with pytest.raises(ValueError):
        tech_enc.index(99)


def test_methodology_embedding_identical_for_same_provider(tiny_dataset, tiny_builder):
    by_provider = tiny_dataset.by_provider()
    pid, obs_list = next((k, v) for k, v in by_provider.items() if len(v) >= 2)
    X = tiny_builder.vectorize(obs_list[:2])
    d = len(CORE_FEATURES) + 56 + 6
    np.testing.assert_array_equal(X[0, d:], X[1, d:])


def test_encoder_index_array_matches_scalar():
    state_enc = StateOneHot()
    abbrs = ["NE", "ca", "NE", "PR"]
    assert state_enc.index_array(abbrs).tolist() == [
        state_enc.index(a) for a in abbrs
    ]
    with pytest.raises(ValueError):
        state_enc.index_array(["NE", "ZZ"])
    tech_enc = TechnologyOneHot()
    codes = [50, 10, 50, 40]
    assert tech_enc.index_array(codes).tolist() == [
        tech_enc.index(c) for c in codes
    ]
    with pytest.raises(ValueError):
        tech_enc.index_array([50, 99])


def test_vectorize_missing_claim_tier_fallback(tiny_world, tiny_builder):
    """Hypothetical claims (absent from filings) batch exactly like rows."""
    from repro.dataset.observations import LabelSource, Observation

    provider = tiny_world.universe.providers[0]
    tech = provider.technologies[0]
    state = tiny_world.fabric.towns[0].state
    # A cell the provider never filed for: claim lookup must miss and fall
    # back to tier attributes in both the scalar and batched paths.
    probe = Observation(
        provider_id=provider.provider_id,
        cell=123456789,
        technology=tech,
        state=state,
        unserved=0,
        source=LabelSource.SYNTHETIC,
    )
    batched = tiny_builder.vectorize([probe])
    np.testing.assert_array_equal(batched[0], tiny_builder.vectorize_one(probe))
