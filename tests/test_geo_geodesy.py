"""Tests for geodesic primitives."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import (
    bounding_box,
    destination_point,
    haversine_m,
    haversine_m_vec,
)

lat_st = st.floats(min_value=-80, max_value=80, allow_nan=False)
lng_st = st.floats(min_value=-179, max_value=179, allow_nan=False)


def test_one_degree_longitude_at_equator():
    assert haversine_m(0, 0, 0, 1) == pytest.approx(111_195, rel=0.01)


def test_distance_zero_for_same_point():
    assert haversine_m(40.0, -100.0, 40.0, -100.0) == 0.0


def test_distance_symmetric():
    a = haversine_m(40, -100, 41, -99)
    b = haversine_m(41, -99, 40, -100)
    assert a == pytest.approx(b, rel=1e-12)


def test_vectorized_matches_scalar():
    lat2 = np.array([41.0, 42.0])
    lng2 = np.array([-99.0, -98.0])
    vec = haversine_m_vec(40.0, -100.0, lat2, lng2)
    for i in range(2):
        assert vec[i] == pytest.approx(
            haversine_m(40.0, -100.0, float(lat2[i]), float(lng2[i])), rel=1e-12
        )


@given(lat_st, lng_st, st.floats(min_value=0, max_value=359), st.floats(min_value=1, max_value=50_000))
def test_destination_point_roundtrip_distance(lat, lng, bearing, dist):
    lat2, lng2 = destination_point(lat, lng, bearing, dist)
    assert haversine_m(lat, lng, lat2, lng2) == pytest.approx(dist, rel=1e-6)


def test_destination_point_north():
    lat2, lng2 = destination_point(40.0, -100.0, 0.0, 10_000)
    assert lat2 > 40.0
    assert lng2 == pytest.approx(-100.0, abs=1e-9)


@given(lat_st, lng_st, st.floats(min_value=100, max_value=20_000))
def test_bounding_box_contains_disk_cardinals(lat, lng, radius):
    lat_min, lat_max, lng_min, lng_max = bounding_box(lat, lng, radius)
    for bearing in (0, 90, 180, 270):
        plat, plng = destination_point(lat, lng, bearing, radius * 0.999)
        assert lat_min - 1e-9 <= plat <= lat_max + 1e-9
        assert lng_min - 1e-9 <= plng <= lng_max + 1e-9


def test_bounding_box_clamps_at_poles():
    lat_min, lat_max, _, _ = bounding_box(89.9, 0.0, 100_000)
    assert lat_max == 90.0
