"""Tests for the H3-analog hexagonal grid."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import hexgrid as hg
from repro.geo import haversine_m

lat_st = st.floats(min_value=-65, max_value=65, allow_nan=False)
lng_st = st.floats(min_value=-170, max_value=170, allow_nan=False)
res_st = st.integers(min_value=0, max_value=12)


def test_res8_area_near_half_km2():
    # The paper: res-8 cells are "approximately 0.5 km^2".
    assert 0.4 < hg.cell_area_km2(8) < 0.7


def test_edge_lengths_scale_by_sqrt7():
    ratio = hg.edge_length_m(5) / hg.edge_length_m(6)
    assert ratio == pytest.approx(math.sqrt(7), rel=1e-12)


def test_pack_unpack_roundtrip():
    cell = hg.pack_cell(8, -12345, 6789)
    assert hg.unpack_cell(cell) == (8, -12345, 6789)


def test_pack_rejects_bad_res():
    with pytest.raises(ValueError):
        hg.pack_cell(16, 0, 0)


def test_pack_rejects_out_of_range_coords():
    with pytest.raises(ValueError):
        hg.pack_cell(8, 2**29, 0)


@given(lat_st, lng_st, res_st)
@settings(max_examples=200)
def test_point_maps_to_cell_near_centroid(lat, lng, res):
    cell = hg.latlng_to_cell(lat, lng, res)
    clat, clng = hg.cell_to_latlng(cell)
    # The point lies within the cell's circumradius of the centroid, inflated
    # by the projection's documented shear bound far from the central
    # meridian (sqrt(1 + (dlmb * sin(lat))^2)).
    dlmb = math.radians((lng - hg.CENTRAL_MERIDIAN_DEG + 180.0) % 360.0 - 180.0)
    shear = math.sqrt(1.0 + (dlmb * math.sin(math.radians(lat))) ** 2)
    bound = hg.edge_length_m(res) * 2.0 * shear
    assert haversine_m(lat, lng, clat, clng) <= bound


def test_point_in_cell_tight_over_conus():
    # Over the paper's study area the distortion is a few percent: points sit
    # within ~1.05 circumradii of their res-8 cell centroid.
    for lat, lng in [(25.9, -80.2), (47.6, -122.3), (40.7, -74.0), (34.0, -118.2)]:
        cell = hg.latlng_to_cell(lat, lng, 8)
        clat, clng = hg.cell_to_latlng(cell)
        assert haversine_m(lat, lng, clat, clng) <= hg.edge_length_m(8) * 1.15


@given(lat_st, lng_st)
def test_centroid_maps_back_to_same_cell(lat, lng):
    cell = hg.latlng_to_cell(lat, lng, 8)
    clat, clng = hg.cell_to_latlng(cell)
    assert hg.latlng_to_cell(clat, clng, 8) == cell


def test_grid_disk_sizes():
    cell = hg.latlng_to_cell(40, -100, 8)
    for k in range(5):
        assert len(hg.grid_disk(cell, k)) == 1 + 3 * k * (k + 1)


def test_grid_ring_sizes():
    cell = hg.latlng_to_cell(40, -100, 8)
    assert hg.grid_ring(cell, 0) == [cell]
    for k in range(1, 5):
        ring = hg.grid_ring(cell, k)
        assert len(ring) == 6 * k
        assert all(hg.grid_distance(cell, c) == k for c in ring)


def test_disk_is_union_of_rings():
    cell = hg.latlng_to_cell(35, -90, 7)
    disk = set(hg.grid_disk(cell, 3))
    rings = set()
    for k in range(4):
        rings.update(hg.grid_ring(cell, k))
    assert disk == rings


def test_neighbors_are_distance_one():
    cell = hg.latlng_to_cell(40, -100, 8)
    neighbors = hg.grid_neighbors(cell)
    assert len(set(neighbors)) == 6
    assert all(hg.grid_distance(cell, n) == 1 for n in neighbors)


def test_grid_distance_symmetry_and_triangle():
    a = hg.latlng_to_cell(40, -100, 8)
    b = hg.latlng_to_cell(40.05, -100.05, 8)
    c = hg.latlng_to_cell(40.1, -99.95, 8)
    assert hg.grid_distance(a, b) == hg.grid_distance(b, a)
    assert hg.grid_distance(a, c) <= hg.grid_distance(a, b) + hg.grid_distance(b, c)


def test_grid_distance_rejects_mixed_resolution():
    a = hg.latlng_to_cell(40, -100, 8)
    b = hg.latlng_to_cell(40, -100, 7)
    with pytest.raises(ValueError):
        hg.grid_distance(a, b)


def test_cells_within_radius_cover_and_filter():
    cells = hg.cells_within_radius(40, -100, 3000, 8)
    assert cells
    for cell in cells:
        clat, clng = hg.cell_to_latlng(cell)
        assert haversine_m(40, -100, clat, clng) <= 3000
    # All six immediate neighbors' centroids are well within 3 km.
    center = hg.latlng_to_cell(40, -100, 8)
    assert set(hg.grid_neighbors(center)).issubset(set(cells))


def test_cell_boundary_hexagon():
    cell = hg.latlng_to_cell(40, -100, 8)
    boundary = hg.cell_boundary(cell)
    assert len(boundary) == 6
    clat, clng = hg.cell_to_latlng(cell)
    for vlat, vlng in boundary:
        # Vertices are one circumradius away from the centre.
        d = haversine_m(clat, clng, vlat, vlng)
        assert d == pytest.approx(hg.edge_length_m(8), rel=0.1)


def test_parent_contains_child_centroid():
    cell = hg.latlng_to_cell(40, -100, 9)
    parent = hg.cell_to_parent(cell, 8)
    assert hg.cell_resolution(parent) == 8
    lat, lng = hg.cell_to_latlng(cell)
    assert hg.cell_to_parent(cell, 8) == hg.latlng_to_cell(lat, lng, 8)


def test_parent_rejects_finer_resolution():
    cell = hg.latlng_to_cell(40, -100, 8)
    with pytest.raises(ValueError):
        hg.cell_to_parent(cell, 9)


def test_children_average_about_seven():
    cell = hg.latlng_to_cell(40, -100, 6)
    children = hg.cell_to_children(cell, 7)
    assert 4 <= len(children) <= 10
    assert all(hg.cell_to_parent(c, 6) == cell for c in children)


def test_children_identity_at_same_res():
    cell = hg.latlng_to_cell(40, -100, 8)
    assert hg.cell_to_children(cell, 8) == [cell]


def test_is_valid_cell():
    cell = hg.latlng_to_cell(40, -100, 8)
    assert hg.is_valid_cell(cell)
    assert not hg.is_valid_cell(-1)
    assert not hg.is_valid_cell(2**63)


@given(lat_st, lng_st)
def test_distinct_points_far_apart_get_distinct_cells(lat, lng):
    a = hg.latlng_to_cell(lat, lng, 8)
    lat2, lng2 = min(lat + 0.5, 90.0), lng
    b = hg.latlng_to_cell(lat2, lng2, 8)
    assert a != b
