"""Tests for the Bing Maps quadkey tile system."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import quadkey as qk

lat_st = st.floats(min_value=-84, max_value=84, allow_nan=False)
lng_st = st.floats(min_value=-179.9, max_value=179.9, allow_nan=False)
level_st = st.integers(min_value=1, max_value=20)


def test_spec_example_tile_to_quadkey():
    # Worked example from the Bing Maps tile-system documentation.
    assert qk.tile_to_quadkey(3, 5, 3) == "213"


def test_quadkey_tile_roundtrip_spec_example():
    assert qk.quadkey_to_tile("213") == (3, 5, 3)


@given(st.integers(min_value=0, max_value=2**16 - 1), st.integers(min_value=0, max_value=2**16 - 1))
def test_tile_quadkey_roundtrip(tx, ty):
    key = qk.tile_to_quadkey(tx, ty, 16)
    assert qk.quadkey_to_tile(key) == (tx, ty, 16)


def test_invalid_quadkey_digit_rejected():
    with pytest.raises(ValueError):
        qk.quadkey_to_tile("0124")


def test_empty_quadkey_rejected():
    with pytest.raises(ValueError):
        qk.quadkey_to_tile("")


@given(lat_st, lng_st)
def test_point_within_own_tile_bounds(lat, lng):
    # The spec rounds to the nearest pixel (+0.5), so a point can land in the
    # neighbouring tile when it sits within half a pixel of the boundary;
    # allow one pixel of slack.
    key = qk.latlng_to_quadkey(lat, lng, 16)
    lat_s, lat_n, lng_w, lng_e = qk.quadkey_to_bounds(key)
    pixel_deg = 360.0 / qk.map_size(16)
    assert lat_s - pixel_deg <= lat <= lat_n + pixel_deg
    assert lng_w - pixel_deg <= lng <= lng_e + pixel_deg


@given(lat_st, lng_st, level_st)
def test_center_maps_to_same_tile(lat, lng, level):
    key = qk.latlng_to_quadkey(lat, lng, level)
    clat, clng = qk.quadkey_to_center(key)
    assert qk.latlng_to_quadkey(clat, clng, level) == key


def test_zoom16_tile_size_near_500m_mid_latitude():
    # Ookla open-data tiles are "approximately 500 m on a side".
    assert 400 < qk.tile_size_m(40.0, 16) < 620


def test_ground_resolution_decreases_with_latitude():
    assert qk.ground_resolution_m(60.0, 16) < qk.ground_resolution_m(0.0, 16)


def test_map_size():
    assert qk.map_size(1) == 512
    assert qk.map_size(16) == 256 * 65536
    with pytest.raises(ValueError):
        qk.map_size(0)


def test_pixel_roundtrip_center_of_map():
    px, py = qk.latlng_to_pixel(0.0, 0.0, 10)
    lat, lng = qk.pixel_to_latlng(px, py, 10)
    assert abs(lat) < 0.5 and abs(lng) < 0.5


def test_children_and_parent():
    assert qk.quadkey_children("21") == ["210", "211", "212", "213"]
    assert qk.quadkey_parent("213") == "21"
    with pytest.raises(ValueError):
        qk.quadkey_parent("2")


def test_validate_quadkey():
    assert qk.validate_quadkey("0123") == "0123"
    with pytest.raises(ValueError):
        qk.validate_quadkey("04")
