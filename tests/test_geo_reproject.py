"""Tests for the Appendix-D quadkey -> hex re-projection."""

import pytest

from repro.geo import (
    HexAggregate,
    OoklaTileAggregate,
    latlng_to_quadkey,
    quadkey_to_cells,
    reproject_tiles,
)
from repro.geo import hexgrid as hg


def _tile_at(lat, lng, tests=10, devices=5):
    return OoklaTileAggregate(
        quadkey=latlng_to_quadkey(lat, lng, 16),
        tests=tests,
        devices=devices,
        avg_download_kbps=100_000.0,
        avg_upload_kbps=10_000.0,
        avg_latency_ms=20.0,
    )


def test_tile_maps_to_at_least_one_cell():
    cells = quadkey_to_cells(latlng_to_quadkey(40, -100, 16), 8)
    assert 1 <= len(cells) <= 5


def test_tile_cells_include_center_cell():
    key = latlng_to_quadkey(40, -100, 16)
    cells = quadkey_to_cells(key, 8)
    from repro.geo import quadkey_to_center

    clat, clng = quadkey_to_center(key)
    assert hg.latlng_to_cell(clat, clng, 8) in cells


def test_reproject_sums_counts_per_cell():
    t1 = _tile_at(40.0, -100.0, tests=10, devices=5)
    aggregates = reproject_tiles([t1, t1], res=8)
    for agg in aggregates.values():
        assert agg.tests == 20
        assert agg.devices == 10


def test_reproject_takes_max_throughput_min_latency():
    key = latlng_to_quadkey(40.0, -100.0, 16)
    fast = OoklaTileAggregate(key, 1, 1, 200_000.0, 20_000.0, 10.0)
    slow = OoklaTileAggregate(key, 1, 1, 50_000.0, 5_000.0, 40.0)
    aggregates = reproject_tiles([fast, slow], res=8)
    for agg in aggregates.values():
        assert agg.max_avg_download_kbps == 200_000.0
        assert agg.max_avg_upload_kbps == 20_000.0
        assert agg.min_avg_latency_ms == 10.0


def test_reproject_spanning_tile_counts_in_each_cell():
    # Find a tile that spans >= 2 hex cells by scanning a transect.
    for frac in range(200):
        lat = 40.0 + frac * 0.003
        key = latlng_to_quadkey(lat, -100.0, 16)
        cells = quadkey_to_cells(key, 8)
        if len(cells) >= 2:
            tile = OoklaTileAggregate(key, 7, 3, 1.0, 1.0, 1.0)
            aggregates = reproject_tiles([tile], res=8)
            assert set(aggregates) == set(cells)
            assert all(a.tests == 7 for a in aggregates.values())
            return
    pytest.fail("no spanning tile found on transect")


def test_hex_aggregate_tracks_source_tiles():
    t1 = _tile_at(40.0, -100.0)
    aggregates = reproject_tiles([t1], res=8)
    for agg in aggregates.values():
        assert agg.source_tiles == [t1.quadkey]
