"""Tests for the vectorized hex-grid code paths (used by the Fabric)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import hexgrid as hg


def _random_points(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(25, 49, n), rng.uniform(-124, -67, n)


def test_vectorized_matches_scalar_conus():
    lats, lngs = _random_points(500)
    vec = hg.latlng_to_cell_vec(lats, lngs, 8)
    for i in range(0, 500, 25):
        assert int(vec[i]) == hg.latlng_to_cell(float(lats[i]), float(lngs[i]), 8)


@given(st.integers(min_value=0, max_value=12))
@settings(max_examples=13, deadline=None)
def test_vectorized_matches_scalar_all_resolutions(res):
    lats, lngs = _random_points(40, seed=res)
    vec = hg.latlng_to_cell_vec(lats, lngs, res)
    scal = [hg.latlng_to_cell(float(a), float(b), res) for a, b in zip(lats, lngs)]
    assert vec.tolist() == scal


def test_cell_to_latlng_vec_roundtrip():
    lats, lngs = _random_points(200, seed=3)
    cells = hg.latlng_to_cell_vec(lats, lngs, 8)
    la, lo = hg.cell_to_latlng_vec(cells)
    back = hg.latlng_to_cell_vec(la, lo, 8)
    np.testing.assert_array_equal(cells, back)


def test_cell_to_latlng_vec_rejects_mixed_resolutions():
    a = hg.latlng_to_cell(40, -100, 8)
    b = hg.latlng_to_cell(40, -100, 7)
    with pytest.raises(ValueError):
        hg.cell_to_latlng_vec(np.array([a, b], dtype=np.uint64))


def test_cell_to_latlng_vec_empty():
    la, lo = hg.cell_to_latlng_vec(np.empty(0, dtype=np.uint64))
    assert la.size == 0 and lo.size == 0


def test_cells_to_axial_vec_matches_unpack():
    lats, lngs = _random_points(100, seed=5)
    cells = hg.latlng_to_cell_vec(lats, lngs, 8)
    res, q, r = hg.cells_to_axial_vec(cells)
    for i in range(0, 100, 10):
        assert (int(res[i]), int(q[i]), int(r[i])) == hg.unpack_cell(int(cells[i]))


def test_grid_distance_vec_matches_scalar():
    lats, lngs = _random_points(60, seed=6)
    cells = hg.latlng_to_cell_vec(lats, lngs, 8)
    ref = hg.latlng_to_cell(40.0, -100.0, 8)
    dists = hg.grid_distance_vec(cells, ref)
    for i in range(0, 60, 6):
        assert int(dists[i]) == hg.grid_distance(int(cells[i]), ref)


def test_vectorized_handles_length_one_arrays():
    out = hg.latlng_to_cell_vec(np.array([40.0]), np.array([-100.0]), 8)
    assert int(out[0]) == hg.latlng_to_cell(40.0, -100.0, 8)
