"""Tests for the GP Bayesian optimizer."""

import math

import numpy as np
import pytest

from repro.ml import BayesianOptimizer, ParamSpec, SearchSpace, maximize


def test_param_spec_roundtrip_linear():
    spec = ParamSpec(2.0, 10.0)
    assert spec.from_unit(spec.to_unit(7.3)) == pytest.approx(7.3)


def test_param_spec_roundtrip_log():
    spec = ParamSpec(1e-4, 1.0, log=True)
    assert spec.from_unit(spec.to_unit(0.01)) == pytest.approx(0.01)


def test_param_spec_integer_rounding_and_clipping():
    spec = ParamSpec(1, 10, integer=True)
    assert spec.from_unit(0.0) == 1
    assert spec.from_unit(1.0) == 10
    assert isinstance(spec.from_unit(0.5), int)


def test_param_spec_validation():
    with pytest.raises(ValueError):
        ParamSpec(5.0, 1.0)
    with pytest.raises(ValueError):
        ParamSpec(0.0, 1.0, log=True)


def test_space_rejects_empty():
    with pytest.raises(ValueError):
        SearchSpace({})


def test_space_unit_roundtrip():
    space = SearchSpace({"a": ParamSpec(0, 1), "b": ParamSpec(1, 100, log=True)})
    params = {"a": 0.25, "b": 10.0}
    u = space.to_unit(params)
    back = space.from_unit(u)
    assert back["a"] == pytest.approx(0.25)
    assert back["b"] == pytest.approx(10.0)


def test_initial_asks_are_random_but_in_bounds():
    space = SearchSpace({"x": ParamSpec(-5, 5)})
    opt = BayesianOptimizer(space, seed=3)
    for _ in range(4):
        p = opt.ask()
        assert -5 <= p["x"] <= 5
        opt.tell(p, 0.0)


def test_tell_rejects_nonfinite():
    space = SearchSpace({"x": ParamSpec(0, 1)})
    opt = BayesianOptimizer(space)
    with pytest.raises(ValueError):
        opt.tell({"x": 0.5}, float("nan"))


def test_best_params_requires_observations():
    opt = BayesianOptimizer(SearchSpace({"x": ParamSpec(0, 1)}))
    with pytest.raises(RuntimeError):
        _ = opt.best_params


def test_optimizer_finds_quadratic_optimum():
    space = SearchSpace({"x": ParamSpec(0.0, 1.0)})
    best, value, _ = maximize(
        lambda p: -((p["x"] - 0.62) ** 2), space, n_iter=25, seed=0
    )
    assert abs(best["x"] - 0.62) < 0.15


def test_optimizer_beats_pure_random_on_average():
    # On a smooth 2-D bowl, BO's best-found should be at least as good as a
    # same-budget random search with the same seed.
    space = SearchSpace({"x": ParamSpec(0, 1), "y": ParamSpec(0, 1)})

    def objective(p):
        return -((p["x"] - 0.3) ** 2 + (p["y"] - 0.7) ** 2)

    _, bo_value, _ = maximize(objective, space, n_iter=25, seed=42)
    rng = np.random.default_rng(42)
    random_value = max(
        objective({"x": rng.random(), "y": rng.random()}) for _ in range(25)
    )
    assert bo_value >= random_value - 1e-3


def test_maximize_validates_n_iter():
    space = SearchSpace({"x": ParamSpec(0, 1)})
    with pytest.raises(ValueError):
        maximize(lambda p: 0.0, space, n_iter=0)


def test_integer_params_returned_as_int():
    space = SearchSpace({"n": ParamSpec(1, 9, integer=True)})
    best, _, _ = maximize(lambda p: -abs(p["n"] - 4), space, n_iter=12, seed=1)
    assert isinstance(best["n"], int)
