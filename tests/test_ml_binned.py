"""Binned batch inference and shared-binner training equivalence.

The binned path must be *bitwise* identical to the float path (the
quantized comparison is exact, not approximate), and training from a
shared pre-fitted binner / pre-binned codes must reproduce the unshared
fit exactly.
"""

import numpy as np
import pytest

from repro.ml.gbdt import GBDTParams, GradientBoostedClassifier
from repro.ml.tree import HistogramBinner


def _problem(n=400, d=12, seed=0, nan_frac=0.15):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X[rng.random((n, d)) < nan_frac] = np.nan
    logit = np.nan_to_num(X[:, 0]) - 0.5 * np.nan_to_num(X[:, 1])
    y = (rng.random(n) < 1.0 / (1.0 + np.exp(-logit))).astype(float)
    return X, y


@pytest.fixture(scope="module")
def fitted():
    X, y = _problem()
    model = GradientBoostedClassifier(
        GBDTParams(n_estimators=12, max_depth=4, learning_rate=0.3, max_bins=16)
    ).fit(X, y)
    return model, X, y


# -- binned inference ----------------------------------------------------------


def test_binned_margin_bitwise_equals_float(fitted):
    model, X, _ = fitted
    np.testing.assert_array_equal(
        model.predict_margin(X), model.predict_margin(X, binned=True)
    )


def test_binned_margin_accepts_prebinned_codes(fitted):
    model, X, _ = fitted
    codes = model._state.binner.transform(X)
    np.testing.assert_array_equal(
        model.predict_margin(X), model.predict_margin(codes, binned=True)
    )
    np.testing.assert_array_equal(
        model.predict_proba(X), model.predict_proba(codes, binned=True)
    )


def test_binned_margin_on_unseen_rows(fitted):
    """Rows outside the training value range still route identically."""
    model, X, _ = fitted
    rng = np.random.default_rng(7)
    X2 = rng.normal(scale=10.0, size=(257, X.shape[1]))
    X2[rng.random(X2.shape) < 0.3] = np.nan
    X2[0, :] = np.inf
    X2[1, :] = -np.inf
    np.testing.assert_array_equal(
        model.predict_margin(X2), model.predict_margin(X2, binned=True)
    )


def test_binned_leaves_equal_float_leaves(fitted):
    model, X, _ = fitted
    flat = model.flat_ensemble
    flat.bind_binner(model._state.binner)
    codes = model._state.binner.transform(X)
    np.testing.assert_array_equal(
        flat.predict_leaves(X), flat.predict_leaves_binned(codes)
    )


def test_binned_compaction_path_bitwise(fitted):
    """Heavily pruned trees finish early, exercising frontier compaction."""
    X, y = _problem(n=1500, d=8, seed=3)
    model = GradientBoostedClassifier(
        GBDTParams(
            n_estimators=10, max_depth=8, min_samples_leaf=200, learning_rate=0.3
        )
    ).fit(X, y)
    np.testing.assert_array_equal(
        model.predict_margin(X), model.predict_margin(X, binned=True)
    )


def test_predict_leaves_binned_requires_binding(fitted):
    model, X, _ = fitted
    fresh = GradientBoostedClassifier(
        GBDTParams(n_estimators=2, max_depth=2)
    ).fit(*_problem(n=80, d=4, seed=1))
    with pytest.raises(RuntimeError):
        fresh.flat_ensemble.predict_leaves_binned(
            np.zeros((3, 4), dtype=np.uint8)
        )


def test_predict_leaves_binned_validates_codes(fitted):
    model, X, _ = fitted
    flat = model.flat_ensemble
    flat.bind_binner(model._state.binner)
    with pytest.raises(ValueError):
        flat.predict_leaves_binned(np.zeros((3, X.shape[1])))  # float, not codes
    with pytest.raises(ValueError):
        flat.predict_leaves_binned(np.zeros((3, X.shape[1] + 1), dtype=np.uint8))


def test_bind_binner_rejects_mismatched_binner(fitted):
    model, X, _ = fitted
    other = HistogramBinner(max_bins=16).fit(np.arange(40.0).reshape(10, 4).repeat(3, axis=1))
    with pytest.raises((ValueError, IndexError)):
        model.flat_ensemble.bind_binner(other)


# -- shared binner training ----------------------------------------------------


def test_fit_with_shared_binner_bitwise_equal(fitted):
    model, X, y = fitted
    params = GBDTParams(
        n_estimators=12, max_depth=4, learning_rate=0.3, max_bins=16
    )
    binner = HistogramBinner(max_bins=16).fit(X)
    from_float = GradientBoostedClassifier(params).fit(X, y, binner=binner)
    from_codes = GradientBoostedClassifier(params).fit(
        binner.transform(X), y, binner=binner
    )
    np.testing.assert_array_equal(
        model.predict_margin(X), from_float.predict_margin(X)
    )
    np.testing.assert_array_equal(
        model.predict_margin(X), from_codes.predict_margin(X)
    )


def test_fit_with_shared_binner_subsampled_bitwise_equal():
    X, y = _problem(n=600, d=10, seed=5)
    params = GBDTParams(
        n_estimators=8, max_depth=3, subsample=0.7, colsample_bytree=0.6,
        learning_rate=0.2, max_bins=32, random_state=11,
    )
    plain = GradientBoostedClassifier(params).fit(X, y)
    binner = HistogramBinner(max_bins=32).fit(X)
    shared = GradientBoostedClassifier(params).fit(
        binner.transform(X), y, binner=binner
    )
    np.testing.assert_array_equal(plain.predict_margin(X), shared.predict_margin(X))


def test_fit_with_shared_binner_eval_set_bitwise_equal():
    X, y = _problem(n=500, d=8, seed=9)
    Xe, ye = _problem(n=200, d=8, seed=10)
    params = GBDTParams(n_estimators=20, max_depth=3, learning_rate=0.3, max_bins=16)
    plain = GradientBoostedClassifier(params).fit(
        X, y, eval_set=(Xe, ye), early_stopping_rounds=4
    )
    binner = HistogramBinner(max_bins=16).fit(X)
    shared = GradientBoostedClassifier(params).fit(
        binner.transform(X),
        y,
        eval_set=(binner.transform(Xe), ye),
        early_stopping_rounds=4,
        binner=binner,
    )
    assert len(plain.trees) == len(shared.trees)
    assert plain.eval_loss_curve == shared.eval_loss_curve
    np.testing.assert_array_equal(plain.predict_margin(X), shared.predict_margin(X))


def test_fit_rejects_unfitted_or_mismatched_binner():
    X, y = _problem(n=100, d=4, seed=2)
    with pytest.raises(RuntimeError):
        GradientBoostedClassifier(GBDTParams(n_estimators=2)).fit(
            X, y, binner=HistogramBinner(max_bins=64)
        )
    binner = HistogramBinner(max_bins=32).fit(X)
    with pytest.raises(ValueError):
        GradientBoostedClassifier(GBDTParams(n_estimators=2, max_bins=64)).fit(
            X, y, binner=binner
        )
    with pytest.raises(ValueError):
        GradientBoostedClassifier(GBDTParams(n_estimators=2, max_bins=32)).fit(
            binner.transform(X)[:, :3], y, binner=binner
        )
    with pytest.raises(ValueError):
        GradientBoostedClassifier(GBDTParams(n_estimators=2, max_bins=32)).fit(
            binner.transform(X),
            y,
            eval_set=(binner.transform(X)[:, :3], y),
            binner=binner,
        )
