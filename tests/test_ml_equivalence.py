"""Equivalence of the vectorized GBDT kernels with the seed implementation.

The fused-histogram trainer, flat-ensemble inference, and vectorized
binner must reproduce the seed kernels (preserved in
:mod:`repro.ml._reference`) exactly:

* with sibling subtraction disabled, grown trees are **bitwise identical**
  to the seed builder's (all node arrays including gains);
* with sibling subtraction enabled, the tree structure, thresholds and
  leaf values stay identical except at *exact gain ties* — two candidate
  splits whose real-valued gains coincide — where the derived histogram's
  last-ulp rounding may legitimately select the other equally-optimal
  candidate (recorded gains may always differ in the last ulp);
* batched flat-ensemble margins equal the seed's per-tree prediction loop
  bitwise, and full training runs produce identical models.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml._reference import (
    grow_tree_reference,
    reference_binner_transform,
    reference_fit,
    reference_predict_margin,
)
from repro.ml.gbdt import GBDTParams, GradientBoostedClassifier
from repro.ml.tree import (
    FlatEnsemble,
    HistogramBinner,
    TreeGrowthParams,
    grow_tree,
)

_STRUCTURE_FIELDS = (
    "feature",
    "threshold_bin",
    "children_left",
    "children_right",
    "default_left",
    "threshold",
    "values",
    "cover",
)


def _random_problem(seed, n=400, d=10, nan_rate=0.0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    if nan_rate:
        X[rng.random((n, d)) < nan_rate] = np.nan
    logit = np.nan_to_num(X[:, 0]) - 0.5 * np.nan_to_num(X[:, 1])
    y = (rng.random(n) < 1.0 / (1.0 + np.exp(-logit))).astype(float)
    return X, y


def _random_grad_hess(seed, n):
    rng = np.random.default_rng(seed + 1)
    p = rng.uniform(0.02, 0.98, size=n)
    y = (rng.random(n) < p).astype(float)
    return p - y, np.maximum(p * (1.0 - p), 1e-16)


def _assert_same_tree(ref, new, bitwise_gain: bool):
    for name in _STRUCTURE_FIELDS:
        a, b = getattr(ref, name), getattr(new, name)
        np.testing.assert_array_equal(a, b, err_msg=f"tree field {name!r}")
    if bitwise_gain:
        np.testing.assert_array_equal(ref.gain, new.gain, err_msg="tree gains")
    else:
        np.testing.assert_allclose(ref.gain, new.gain, rtol=1e-9, atol=1e-12)


def _assert_same_tree_or_tied(ref, new, ref_node=0, new_node=0):
    """Structural identity, except where an exact gain tie explains a fork.

    Sibling subtraction perturbs gains by ulps, so when two candidate
    splits have *exactly* equal real gains the perturbed argmax may pick
    the other equally-optimal one.  Any structural divergence must
    therefore coincide with (numerically) tied gains; matching subtrees
    must agree bitwise on everything but the gain's last ulp.
    """
    ref_leaf = ref.children_left[ref_node] < 0
    new_leaf = new.children_left[new_node] < 0
    diverged = ref_leaf != new_leaf or (
        not ref_leaf
        and (
            ref.feature[ref_node] != new.feature[new_node]
            or ref.threshold_bin[ref_node] != new.threshold_bin[new_node]
            or ref.default_left[ref_node] != new.default_left[new_node]
        )
    )
    if diverged:
        assert np.isclose(
            ref.gain[ref_node], new.gain[new_node], rtol=1e-9, atol=1e-12
        ), (
            f"structural divergence without a gain tie: ref node {ref_node} "
            f"gain {ref.gain[ref_node]!r} vs new node {new_node} gain "
            f"{new.gain[new_node]!r}"
        )
        return  # equally-optimal fork: subtrees legitimately differ
    np.testing.assert_array_equal(ref.cover[ref_node], new.cover[new_node])
    if ref_leaf:
        np.testing.assert_array_equal(ref.values[ref_node], new.values[new_node])
        return
    np.testing.assert_array_equal(ref.threshold[ref_node], new.threshold[new_node])
    _assert_same_tree_or_tied(
        ref, new, int(ref.children_left[ref_node]), int(new.children_left[new_node])
    )
    _assert_same_tree_or_tied(
        ref, new, int(ref.children_right[ref_node]), int(new.children_right[new_node])
    )


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    nan_heavy=st.booleans(),
    subset_features=st.booleans(),
)
@settings(max_examples=12, deadline=None)
def test_exact_mode_trees_bitwise_identical(seed, nan_heavy, subset_features):
    """Fused histograms + flat argmax == seed per-feature scan, bit for bit.

    Also grows the production configuration (sibling subtraction ON) on
    every example: it must match the seed node for node except where an
    exact gain tie lets it pick an equally-optimal split (hypothesis
    found such a tie at seed 186 with 50% NaN).
    """
    X, y = _random_problem(seed, n=300, d=8, nan_rate=0.5 if nan_heavy else 0.0)
    grad, hess = _random_grad_hess(seed, X.shape[0])
    binner = HistogramBinner(max_bins=16)
    Xb = binner.fit_transform(X)
    rows = np.arange(X.shape[0])
    if subset_features:
        rng = np.random.default_rng(seed + 2)
        cols = np.sort(rng.choice(X.shape[1], size=5, replace=False))
    else:
        cols = np.arange(X.shape[1])
    params = TreeGrowthParams(max_depth=5, min_samples_leaf=2)
    ref = grow_tree_reference(Xb, binner, grad, hess, rows, cols, params)
    new = grow_tree(
        Xb, binner, grad, hess, rows, cols, params, sibling_subtraction=False
    )
    _assert_same_tree(ref, new, bitwise_gain=True)
    production = grow_tree(Xb, binner, grad, hess, rows, cols, params)
    _assert_same_tree_or_tied(ref, production)


@pytest.mark.parametrize(
    "seed,nan_rate", [(0, 0.0), (1, 0.5), (2, 0.15), (3, 0.0)]
)
def test_sibling_subtraction_trees_structurally_identical(seed, nan_rate):
    """The subtraction trick changes gains by ulps at most, never the tree."""
    X, y = _random_problem(seed, n=500, d=12, nan_rate=nan_rate)
    grad, hess = _random_grad_hess(seed, X.shape[0])
    binner = HistogramBinner(max_bins=32)
    Xb = binner.fit_transform(X)
    rows = np.arange(X.shape[0])
    cols = np.arange(X.shape[1])
    params = TreeGrowthParams(max_depth=6)
    ref = grow_tree_reference(Xb, binner, grad, hess, rows, cols, params)
    new = grow_tree(Xb, binner, grad, hess, rows, cols, params)
    _assert_same_tree(ref, new, bitwise_gain=False)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_binner_transform_bitwise_identical(seed):
    """Broadcast cut-counting == the seed per-feature searchsorted loop."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(200, 6))
    # Exercise duplicates, NaN, +-inf, and exact cut-boundary values.
    X[:, 1] = np.round(X[:, 1])
    X[rng.random(X.shape) < 0.2] = np.nan
    X[rng.random(X.shape) < 0.02] = np.inf
    X[rng.random(X.shape) < 0.02] = -np.inf
    binner = HistogramBinner(max_bins=12).fit(X)
    if binner.split_values_[0].size:
        X[0, 0] = binner.split_values_[0][0]  # exact boundary hit
    np.testing.assert_array_equal(
        binner.transform(X), reference_binner_transform(binner, X)
    )


@pytest.mark.parametrize(
    "params",
    [
        GBDTParams(n_estimators=12, max_depth=4, learning_rate=0.3, random_state=5),
        GBDTParams(
            n_estimators=10,
            max_depth=5,
            subsample=0.7,
            colsample_bytree=0.5,
            random_state=11,
        ),
        GBDTParams(
            n_estimators=8,
            max_depth=4,
            reg_alpha=0.5,
            gamma=0.1,
            min_child_weight=3.0,
            random_state=2,
        ),
    ],
)
def test_full_fit_margins_bitwise_identical(params):
    """End-to-end: new fit + flat inference == seed fit + per-tree loop."""
    X, y = _random_problem(params.random_state, n=600, d=9, nan_rate=0.2)
    ref = reference_fit(params, X, y)
    model = GradientBoostedClassifier(params).fit(X, y)
    assert len(ref.trees) == len(model.trees)
    for t_ref, t_new in zip(ref.trees, model.trees):
        _assert_same_tree(t_ref, t_new, bitwise_gain=False)
    assert ref.train_loss == model.train_loss_curve
    X_fresh, _ = _random_problem(params.random_state + 77, n=150, d=9, nan_rate=0.3)
    for data in (X, X_fresh):
        np.testing.assert_array_equal(
            reference_predict_margin(ref.base_margin, ref.trees, data),
            model.predict_margin(data),
        )


def test_flat_ensemble_matches_per_tree_predictions():
    X, y = _random_problem(21, n=500, d=8, nan_rate=0.1)
    model = GradientBoostedClassifier(n_estimators=20, max_depth=4).fit(X, y)
    flat = model.flat_ensemble
    assert flat.n_trees == len(model.trees)
    assert flat.n_nodes == sum(t.n_nodes for t in model.trees)
    np.testing.assert_array_equal(
        flat.predict_margin(X, base_margin=model.base_margin),
        reference_predict_margin(model.base_margin, model.trees, X),
    )
    # Leaf ids must land inside each tree's node range.
    leaves = flat.predict_leaves(X[:50])
    for t in range(flat.n_trees):
        assert (leaves[:, t] >= flat.offsets[t]).all()
        assert (leaves[:, t] < flat.offsets[t + 1]).all()


def test_flat_ensemble_feature_gains_match_per_tree_sum():
    X, y = _random_problem(33, n=600, d=7)
    model = GradientBoostedClassifier(n_estimators=15, max_depth=4).fit(X, y)
    per_tree = np.zeros(X.shape[1])
    for tree in model.trees:
        per_tree += tree.feature_gains(X.shape[1])
    np.testing.assert_allclose(
        model.flat_ensemble.feature_gains(X.shape[1]), per_tree, rtol=1e-12
    )


def test_flat_ensemble_empty_is_base_margin_only():
    flat = FlatEnsemble.from_trees([])
    margins = flat.predict_margin(np.zeros((4, 3)), base_margin=-1.5)
    np.testing.assert_array_equal(margins, np.full(4, -1.5))
    assert flat.expected_values().size == 0


def test_train_pred_out_matches_tree_predictions():
    """The builder's free training predictions equal a real traversal."""
    X, y = _random_problem(8, n=400, d=6, nan_rate=0.25)
    grad, hess = _random_grad_hess(8, X.shape[0])
    binner = HistogramBinner(max_bins=32)
    Xb = binner.fit_transform(X)
    pred = np.empty(X.shape[0])
    tree = grow_tree(
        Xb,
        binner,
        grad,
        hess,
        np.arange(X.shape[0]),
        np.arange(X.shape[1]),
        TreeGrowthParams(max_depth=5),
        train_pred_out=pred,
    )
    np.testing.assert_array_equal(pred, tree.predict_binned(Xb))
