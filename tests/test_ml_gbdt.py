"""Tests for the gradient-boosted classifier."""

import numpy as np
import pytest

from repro.ml import GBDTParams, GradientBoostedClassifier, roc_auc_score


def _toy_problem(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    logit = 2.0 * X[:, 0] - 1.5 * X[:, 1] + X[:, 2] * X[:, 3]
    y = (rng.random(n) < 1.0 / (1.0 + np.exp(-logit))).astype(int)
    return X, y


def test_learns_nontrivial_signal():
    X, y = _toy_problem()
    model = GradientBoostedClassifier(n_estimators=60, max_depth=4).fit(
        X[:1500], y[:1500]
    )
    auc = roc_auc_score(y[1500:], model.predict_proba(X[1500:]))
    assert auc > 0.85


def test_probabilities_in_unit_interval():
    X, y = _toy_problem(500)
    model = GradientBoostedClassifier(n_estimators=20).fit(X, y)
    p = model.predict_proba(X)
    assert (p > 0).all() and (p < 1).all()


def test_hard_predictions_binary():
    X, y = _toy_problem(300)
    model = GradientBoostedClassifier(n_estimators=10).fit(X, y)
    pred = model.predict(X)
    assert set(np.unique(pred)).issubset({0, 1})


def test_margin_matches_sigmoid_of_proba():
    X, y = _toy_problem(300)
    model = GradientBoostedClassifier(n_estimators=10).fit(X, y)
    margin = model.predict_margin(X)
    proba = model.predict_proba(X)
    np.testing.assert_allclose(proba, 1.0 / (1.0 + np.exp(-margin)), rtol=1e-10)


def test_train_loss_decreases():
    X, y = _toy_problem(1000)
    model = GradientBoostedClassifier(n_estimators=40, learning_rate=0.3).fit(X, y)
    losses = model.train_loss_curve
    assert losses[-1] < losses[0]


def test_deterministic_given_seed():
    X, y = _toy_problem(500)
    m1 = GradientBoostedClassifier(n_estimators=15, subsample=0.7, random_state=9).fit(X, y)
    m2 = GradientBoostedClassifier(n_estimators=15, subsample=0.7, random_state=9).fit(X, y)
    np.testing.assert_array_equal(m1.predict_proba(X), m2.predict_proba(X))


def test_handles_missing_values_end_to_end():
    X, y = _toy_problem(1500, seed=3)
    X[np.random.default_rng(1).random(X.shape) < 0.2] = np.nan
    model = GradientBoostedClassifier(n_estimators=40, max_depth=4).fit(
        X[:1000], y[:1000]
    )
    auc = roc_auc_score(y[1000:], model.predict_proba(X[1000:]))
    assert auc > 0.7


def test_early_stopping_truncates_ensemble():
    X, y = _toy_problem(1200, seed=5)
    model = GradientBoostedClassifier(
        n_estimators=300, learning_rate=0.5, max_depth=6
    ).fit(
        X[:800], y[:800], eval_set=(X[800:], y[800:]), early_stopping_rounds=5
    )
    assert len(model.trees) < 300
    assert len(model.eval_loss_curve) >= len(model.trees)


def test_early_stopping_requires_eval_set():
    X, y = _toy_problem(100)
    with pytest.raises(ValueError):
        GradientBoostedClassifier(n_estimators=5).fit(X, y, early_stopping_rounds=3)


def test_feature_importances_identify_signal():
    X, y = _toy_problem(2000, seed=7)
    model = GradientBoostedClassifier(n_estimators=40, max_depth=3).fit(X, y)
    importances = model.feature_importances_
    assert importances.sum() == pytest.approx(1.0)
    assert importances[0] > importances[4]
    assert importances[1] > importances[5]


def test_subsample_and_colsample_still_learn():
    X, y = _toy_problem(2000, seed=11)
    model = GradientBoostedClassifier(
        n_estimators=60, subsample=0.6, colsample_bytree=0.5, random_state=2
    ).fit(X[:1500], y[:1500])
    auc = roc_auc_score(y[1500:], model.predict_proba(X[1500:]))
    assert auc > 0.8


def test_unfitted_raises():
    model = GradientBoostedClassifier()
    with pytest.raises(RuntimeError):
        model.predict_proba(np.zeros((1, 2)))


def test_rejects_nonbinary_labels():
    with pytest.raises(ValueError):
        GradientBoostedClassifier().fit(np.zeros((3, 1)), np.array([0, 1, 2]))


def test_rejects_shape_mismatch():
    with pytest.raises(ValueError):
        GradientBoostedClassifier().fit(np.zeros((3, 1)), np.array([0, 1]))


def test_predict_validates_feature_count():
    X, y = _toy_problem(200)
    model = GradientBoostedClassifier(n_estimators=5).fit(X, y)
    with pytest.raises(ValueError):
        model.predict_proba(np.zeros((4, 3)))


def test_params_validation():
    with pytest.raises(ValueError):
        GBDTParams(n_estimators=0).validate()
    with pytest.raises(ValueError):
        GBDTParams(learning_rate=0.0).validate()
    with pytest.raises(ValueError):
        GBDTParams(subsample=1.5).validate()


def test_params_validate_max_bins():
    with pytest.raises(ValueError):
        GBDTParams(max_bins=1).validate()
    with pytest.raises(ValueError):
        GBDTParams(max_bins=255).validate()
    assert GBDTParams(max_bins=2).validate().max_bins == 2
    assert GBDTParams(max_bins=254).validate().max_bins == 254


def test_param_overrides_via_kwargs():
    model = GradientBoostedClassifier(GBDTParams(max_depth=3), max_depth=5)
    assert model.params.max_depth == 5


def test_imbalanced_base_margin_reflects_prior():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(1000, 2))
    y = (rng.random(1000) < 0.05).astype(int)
    model = GradientBoostedClassifier(n_estimators=1, learning_rate=0.01).fit(X, y)
    assert model.base_margin < -2.0  # log-odds of ~5% prior
