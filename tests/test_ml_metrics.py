"""Tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)


def test_confusion_matrix_layout():
    cm = confusion_matrix([0, 0, 1, 1], [0, 1, 0, 1])
    assert cm.tolist() == [[1, 1], [1, 1]]


def test_confusion_matrix_rejects_nonbinary():
    with pytest.raises(ValueError):
        confusion_matrix([0, 2], [0, 1])
    with pytest.raises(ValueError):
        confusion_matrix([0, 1], [0, 3])


def test_precision_recall_f1_known_values():
    y_true = [1, 1, 1, 0, 0, 0]
    y_pred = [1, 1, 0, 1, 0, 0]
    assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
    assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
    assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)


def test_negative_class_metrics():
    y_true = [1, 1, 0, 0]
    y_pred = [1, 0, 0, 0]
    assert precision_score(y_true, y_pred, positive=0) == pytest.approx(2 / 3)
    assert recall_score(y_true, y_pred, positive=0) == pytest.approx(1.0)


def test_zero_division_conventions():
    assert precision_score([0, 0], [0, 0]) == 0.0
    assert f1_score([0, 1], [0, 0]) == 0.0


def test_accuracy():
    assert accuracy_score([0, 1, 1, 0], [0, 1, 0, 0]) == pytest.approx(0.75)


def test_perfect_auc():
    assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0


def test_worst_auc():
    assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0


def test_auc_with_ties_is_half_credit():
    assert roc_auc_score([0, 1], [0.5, 0.5]) == pytest.approx(0.5)


def test_auc_requires_both_classes():
    with pytest.raises(ValueError):
        roc_auc_score([1, 1], [0.5, 0.6])


def test_auc_invariant_to_monotone_transform():
    y = np.array([0, 1, 0, 1, 1, 0, 1, 0, 1])
    s = np.array([0.1, 0.7, 0.3, 0.9, 0.6, 0.2, 0.8, 0.4, 0.5])
    assert roc_auc_score(y, s) == pytest.approx(roc_auc_score(y, s * 10 - 3))


def test_roc_curve_endpoints():
    fpr, tpr, thresholds = roc_curve([0, 1, 0, 1], [0.2, 0.3, 0.4, 0.9])
    assert fpr[0] == 0.0 and tpr[0] == 0.0
    assert fpr[-1] == 1.0 and tpr[-1] == 1.0
    assert thresholds[0] == np.inf


def test_roc_curve_monotone():
    rng = np.random.default_rng(0)
    y = rng.integers(0, 2, 200)
    s = rng.random(200)
    y[0], y[1] = 0, 1  # both classes present
    fpr, tpr, _ = roc_curve(y, s)
    assert (np.diff(fpr) >= -1e-12).all()
    assert (np.diff(tpr) >= -1e-12).all()


@given(st.integers(min_value=2, max_value=120))
@settings(max_examples=30)
def test_auc_matches_trapezoid_of_curve(n):
    rng = np.random.default_rng(n)
    y = rng.integers(0, 2, n)
    if y.min() == y.max():
        y[0] = 1 - y[0]
    s = rng.random(n)
    fpr, tpr, _ = roc_curve(y, s)
    assert roc_auc_score(y, s) == pytest.approx(float(np.trapezoid(tpr, fpr)), abs=1e-9)


def test_classification_report_counts_and_rates():
    report = classification_report([0, 0, 1, 1, 1], [0, 1, 1, 1, 0])
    assert (report.tn, report.fp, report.fn, report.tp) == (1, 1, 1, 2)
    assert report.total == 5
    assert report.accuracy == pytest.approx(0.6)
    assert report.precision_pos == pytest.approx(2 / 3)
    assert report.recall_pos == pytest.approx(2 / 3)
    pct = report.class_percentages()
    assert sum(pct.values()) == pytest.approx(100.0)


def test_report_f1_macro_between_class_f1s():
    report = classification_report([0, 1, 1, 0, 1], [0, 1, 0, 0, 1])
    assert min(report.f1_pos, report.f1_neg) <= report.f1_macro <= max(
        report.f1_pos, report.f1_neg
    )
