"""Tests for exact TreeSHAP, including the additivity property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import GradientBoostedClassifier, shap_values, summary_ranking, waterfall
from repro.ml.shap import tree_expected_value


def _model_and_data(n=800, d=5, seed=0, missing=False, **params):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    if missing:
        X[rng.random((n, d)) < 0.1] = np.nan
    logit = 1.5 * np.nan_to_num(X[:, 0]) - np.nan_to_num(X[:, 1])
    y = (rng.random(n) < 1.0 / (1.0 + np.exp(-logit))).astype(int)
    defaults = dict(n_estimators=15, max_depth=3)
    defaults.update(params)
    model = GradientBoostedClassifier(**defaults).fit(X, y)
    return model, X, y


def test_additivity_reconstructs_margin():
    model, X, _ = _model_and_data()
    sample = X[:40]
    expl = shap_values(model, sample)
    margins = model.predict_margin(sample)
    recon = expl.expected_value + expl.values.sum(axis=1)
    np.testing.assert_allclose(recon, margins, atol=1e-9)


def test_additivity_with_missing_values():
    model, X, _ = _model_and_data(missing=True, seed=4)
    sample = X[:30]
    expl = shap_values(model, sample)
    margins = model.predict_margin(sample)
    recon = expl.expected_value + expl.values.sum(axis=1)
    np.testing.assert_allclose(recon, margins, atol=1e-9)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_additivity_property_random_models(seed):
    model, X, _ = _model_and_data(n=300, d=4, seed=seed, n_estimators=8, max_depth=4)
    sample = X[:10]
    expl = shap_values(model, sample)
    recon = expl.expected_value + expl.values.sum(axis=1)
    np.testing.assert_allclose(recon, model.predict_margin(sample), atol=1e-8)


def test_informative_features_get_larger_attributions():
    model, X, _ = _model_and_data(n=2000, n_estimators=40)
    expl = shap_values(model, X[:200])
    mean_abs = np.abs(expl.values).mean(axis=0)
    assert mean_abs[0] > mean_abs[3]
    assert mean_abs[1] > mean_abs[4]


def test_expected_value_is_cover_weighted_leaf_mean():
    model, X, _ = _model_and_data(n=500, n_estimators=3)
    for tree in model.trees:
        ev = tree_expected_value(tree)
        # Expectation must lie within the range of leaf values.
        leaves = tree.values[tree.children_left < 0]
        assert leaves.min() - 1e-12 <= ev <= leaves.max() + 1e-12


def test_single_tree_constant_model_all_zero_shap():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(100, 3))
    y = np.zeros(100, dtype=int)
    y[:2] = 1  # keep both classes but force a trivial model
    model = GradientBoostedClassifier(
        n_estimators=1, max_depth=1, min_child_weight=1000.0
    ).fit(X, y)
    expl = shap_values(model, X[:5])
    np.testing.assert_allclose(expl.values, 0.0, atol=1e-12)


def test_feature_names_propagate():
    model, X, _ = _model_and_data(n=300, n_estimators=5)
    names = ("a", "b", "c", "d", "e")
    expl = shap_values(model, X[:5], feature_names=names)
    ranking = summary_ranking(expl)
    assert {r[0] for r in ranking} == set(names)


def test_feature_names_length_checked():
    model, X, _ = _model_and_data(n=300, n_estimators=5)
    with pytest.raises(ValueError):
        shap_values(model, X[:3], feature_names=("just_one",))


def test_summary_ranking_sorted_and_topk():
    model, X, _ = _model_and_data(n=800, n_estimators=20)
    expl = shap_values(model, X[:100])
    ranking = summary_ranking(expl, top_k=3)
    assert len(ranking) == 3
    magnitudes = [r[1] for r in ranking]
    assert magnitudes == sorted(magnitudes, reverse=True)


def test_waterfall_contains_residual_and_sums_to_margin():
    model, X, _ = _model_and_data(n=500, n_estimators=10)
    expl = shap_values(model, X[:5])
    rows = waterfall(expl, row=0, top_k=2)
    assert rows[-1][0] == "(other features)"
    total = sum(v for _, v in rows)
    assert expl.expected_value + total == pytest.approx(expl.margin(0), abs=1e-9)


def test_shap_input_validation():
    model, X, _ = _model_and_data(n=200, n_estimators=3)
    with pytest.raises(ValueError):
        shap_values(model, np.zeros((2, 99)))
