"""Tests for histogram binning and single-tree growth."""

import numpy as np
import pytest

from repro.ml.tree import (
    MISSING_BIN,
    HistogramBinner,
    TreeGrowthParams,
    grow_tree,
)


def _fit_one_tree(X, g, h, **kwargs):
    binner = HistogramBinner(max_bins=32)
    Xb = binner.fit_transform(X)
    params = TreeGrowthParams(**kwargs)
    rows = np.arange(X.shape[0])
    cols = np.arange(X.shape[1])
    return grow_tree(Xb, binner, g, h, rows, cols, params), binner


def test_binner_roundtrip_ordering():
    X = np.array([[1.0], [5.0], [2.0], [9.0], [3.0]])
    binner = HistogramBinner(max_bins=16)
    Xb = binner.fit_transform(X)
    order = np.argsort(X[:, 0])
    assert (np.diff(Xb[order, 0].astype(int)) >= 0).all()


def test_binner_missing_code():
    X = np.array([[1.0], [np.nan], [2.0]])
    Xb = HistogramBinner(max_bins=8).fit_transform(X)
    assert Xb[1, 0] == MISSING_BIN
    assert Xb[0, 0] != MISSING_BIN


def test_binner_constant_feature_has_single_bin():
    X = np.full((10, 1), 3.0)
    binner = HistogramBinner(max_bins=8).fit(X)
    assert binner.n_bins(0) == 1


def test_binner_all_missing_feature():
    X = np.full((5, 1), np.nan)
    binner = HistogramBinner(max_bins=8)
    Xb = binner.fit_transform(X)
    assert (Xb[:, 0] == MISSING_BIN).all()
    assert binner.n_bins(0) == 1


def test_binner_validates_max_bins():
    with pytest.raises(ValueError):
        HistogramBinner(max_bins=1)
    with pytest.raises(ValueError):
        HistogramBinner(max_bins=255)


def test_binner_requires_fit_before_transform():
    with pytest.raises(RuntimeError):
        HistogramBinner().transform(np.zeros((2, 2)))


def test_tree_splits_obvious_step_function():
    # Squared loss on targets: g = pred - y with pred=0 -> g = -y, h = 1.
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(500, 1))
    y = (X[:, 0] > 0.5).astype(float)
    g, h = -y, np.ones_like(y)
    tree, _ = _fit_one_tree(X, g, h, max_depth=2)
    preds = tree.predict(X)
    # Prediction should separate the two plateaus cleanly.
    assert preds[X[:, 0] < 0.45].mean() < 0.2
    assert preds[X[:, 0] > 0.55].mean() > 0.8


def test_tree_respects_max_depth_one():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(300, 3))
    y = (X[:, 0] + X[:, 1] > 0).astype(float)
    g, h = -y, np.ones_like(y)
    tree, _ = _fit_one_tree(X, g, h, max_depth=1)
    # Depth-1 tree: at most 3 nodes (root + 2 leaves).
    assert tree.n_nodes <= 3


def test_tree_pure_node_becomes_leaf():
    X = np.linspace(0, 1, 50).reshape(-1, 1)
    g = np.zeros(50)  # no gradient anywhere -> no useful split
    h = np.ones(50)
    tree, _ = _fit_one_tree(X, g, h, max_depth=5)
    assert tree.n_nodes == 1
    assert tree.predict(X)[0] == pytest.approx(0.0)


def test_gamma_prunes_weak_splits():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(400, 1))
    y = (rng.random(400) < 0.5).astype(float)  # pure noise
    g, h = -(y - 0.5), np.ones(400)
    tree_big_gamma, _ = _fit_one_tree(X, g, h, max_depth=4, gamma=50.0)
    assert tree_big_gamma.n_nodes == 1


def test_min_child_weight_blocks_tiny_leaves():
    X = np.array([[0.0], [1.0], [2.0], [3.0]])
    g = np.array([-1.0, -1.0, 1.0, 1.0])
    h = np.ones(4)
    tree, _ = _fit_one_tree(X, g, h, max_depth=3, min_child_weight=10.0)
    assert tree.n_nodes == 1


def test_missing_values_routed_to_learned_direction():
    rng = np.random.default_rng(3)
    n = 1000
    X = rng.uniform(0, 1, size=(n, 1))
    y = (X[:, 0] > 0.5).astype(float)
    # Make missing behave like the high branch.
    miss = rng.random(n) < 0.3
    X[miss, 0] = np.nan
    y[miss] = 1.0
    g, h = -y, np.ones(n)
    tree, _ = _fit_one_tree(X, g, h, max_depth=2)
    pred_missing = tree.predict(np.array([[np.nan]]))[0]
    pred_high = tree.predict(np.array([[0.9]]))[0]
    pred_low = tree.predict(np.array([[0.1]]))[0]
    assert abs(pred_missing - pred_high) < abs(pred_missing - pred_low)


def test_predict_binned_matches_predict_raw():
    rng = np.random.default_rng(4)
    X = rng.normal(size=(300, 4))
    X[rng.random((300, 4)) < 0.1] = np.nan
    y = (np.nan_to_num(X[:, 0]) > 0).astype(float)
    g, h = -(y - 0.5), np.ones(300)
    tree, binner = _fit_one_tree(X, g, h, max_depth=4)
    Xb = binner.transform(X)
    np.testing.assert_allclose(tree.predict(X), tree.predict_binned(Xb))


def test_feature_gains_only_on_used_features():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(500, 3))
    y = (X[:, 1] > 0).astype(float)
    g, h = -y, np.ones(500)
    tree, _ = _fit_one_tree(X, g, h, max_depth=2)
    gains = tree.feature_gains(3)
    assert gains[1] > gains[0]
    assert gains[1] > gains[2]


def test_cover_decreases_down_the_tree():
    rng = np.random.default_rng(6)
    X = rng.normal(size=(400, 2))
    y = (X[:, 0] > 0).astype(float)
    g, h = -y, np.ones(400)
    tree, _ = _fit_one_tree(X, g, h, max_depth=3)
    for node in range(tree.n_nodes):
        if not tree.is_leaf(node):
            left, right = tree.children_left[node], tree.children_right[node]
            assert tree.cover[left] <= tree.cover[node]
            assert tree.cover[right] <= tree.cover[node]
            assert tree.cover[left] + tree.cover[right] == pytest.approx(
                tree.cover[node]
            )
