"""Observability over the wire: ``/metrics``, ``trace=1``, request ids.

Drives a live server end to end: the metrics endpoint serves both JSON
and Prometheus text (every exposed family declared in the catalog), a
traced ``POST /v2/claims:batchScore`` returns a span tree covering
admission -> body parse -> handler -> store lookup -> batcher flush ->
cold score, the generated request id is echoed in the ``X-Request-Id``
header / non-v1 error bodies / the structured access log, ``/healthz``
keeps its pre-observability keys while gaining metric snapshots, and
concurrent scoring loses no counter increments.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.obs.catalog import METRIC_CATALOG
from repro.serve import AuditService


@pytest.fixture()
def served(tiny_model, tiny_score_store, ephemeral_server):
    model, _split = tiny_model
    service = AuditService.from_model(model, store=tiny_score_store)
    entries = []
    with ephemeral_server(service, access_log=entries.append) as server:
        yield server, service, entries
    service.close()


def _raw(server, method, path, body=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def _json(server, method, path, body=None):
    status, headers, raw = _raw(server, method, path, body=body)
    return status, headers, json.loads(raw)


def _known_key(store, nth=0):
    return store.claims.key_at(int(store.sus_order[nth]))


def _cold_technology(store, pid, cell):
    return next(
        t
        for t in (10, 40, 50, 70, 71)
        if store.positions(
            np.array([pid]), np.array([cell], dtype=np.uint64), np.array([t])
        )[0]
        < 0
    )


# -- GET /metrics -------------------------------------------------------------


def test_metrics_json(served, tiny_score_store):
    server, service, _entries = served
    pid, cell, tech = _known_key(tiny_score_store)
    _json(server, "GET", f"/v2/claims/{pid}/{cell}/{tech}")
    _wait_recorded(service, 1)
    status, _headers, doc = _json(server, "GET", "/metrics")
    assert status == 200
    assert set(doc) == {"service", "process"}
    # Every exposed family is declared in the catalog (what lets
    # check_docs guarantee the docs cover everything that can exist).
    for scope in ("service", "process"):
        assert set(doc[scope]) <= set(METRIC_CATALOG)
    service_metrics = doc["service"]
    assert "http_requests_total" in service_metrics
    rows = service_metrics["http_requests_total"]["series"]
    claim_rows = [
        r
        for r in rows
        if r["labels"]["route"] == "/v2/claims/{provider_id}/{cell}/{technology}"
    ]
    assert claim_rows and claim_rows[0]["value"] >= 1
    hist = service_metrics["http_request_seconds"]["series"][0]
    assert hist["count"] >= 1 and hist["sum"] > 0


def _wait_recorded(service, floor, timeout_s=5.0):
    """Wait until at least ``floor`` requests are recorded — the metric
    bump lands just after the response bytes flush."""
    metrics = service.registry.metrics
    deadline = time.monotonic() + timeout_s
    while (
        metrics.total("http_requests_total") < floor
        and time.monotonic() < deadline
    ):
        time.sleep(0.005)


def test_metrics_prometheus(served):
    server, service, _entries = served
    _json(server, "GET", "/healthz")
    _wait_recorded(service, 1)
    status, headers, raw = _raw(server, "GET", "/metrics?format=prometheus")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    text = raw.decode()
    assert "# TYPE http_requests_total counter" in text
    assert "# HELP http_requests_total" in text
    buckets = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("http_request_seconds_bucket")
        and 'route="/healthz"' in line
    ]
    assert buckets == sorted(buckets) and buckets[-1] >= 1


def test_metrics_bad_format(served):
    server, _service, _entries = served
    status, _headers, doc = _json(server, "GET", "/metrics?format=xml")
    assert status == 400 and "format" in doc["error"]


# -- trace=1 ------------------------------------------------------------------


def test_traced_batch_score_returns_the_span_tree(served, tiny_score_store):
    server, _service, _entries = served
    pid, cell, tech = _known_key(tiny_score_store)
    cold_tech = _cold_technology(tiny_score_store, pid, cell)
    body = json.dumps(
        {
            "claims": [
                {"provider_id": int(pid), "cell": int(cell), "technology": int(tech)},
                {
                    "provider_id": int(pid),
                    "cell": int(cell),
                    "technology": int(cold_tech),
                    "state": "TX",
                },
            ]
        }
    )
    status, headers, doc = _json(
        server, "POST", "/v2/claims:batchScore?trace=1", body=body
    )
    assert status == 200 and doc["degraded"] is False
    trace = doc["trace"]
    assert trace["request_id"] == headers["X-Request-Id"]
    assert trace["model_version"] == "default"
    assert trace["degraded"] is False

    def names(node, acc):
        acc.append(node["name"])
        for child in node.get("children", ()):
            names(child, acc)
        return acc

    seen = names(trace["spans"], [])
    # The tree covers admission through the cold path, in order.
    assert seen[0] == "request"
    for required in ("admission", "parse_body", "handler", "store_lookup",
                     "batcher_flush", "cold_score"):
        assert required in seen, f"missing span {required!r}: {seen}"
    assert seen.index("admission") < seen.index("parse_body") < seen.index(
        "handler"
    ) < seen.index("cold_score")
    # Span timings are relative to the trace start and nested within it.
    root = trace["spans"]
    assert all(
        child["start_ms"] >= root["start_ms"] for child in root["children"]
    )


def test_untraced_requests_carry_no_trace(served, tiny_score_store):
    server, _service, _entries = served
    pid, cell, tech = _known_key(tiny_score_store)
    status, _headers, doc = _json(server, "GET", f"/v2/claims/{pid}/{cell}/{tech}")
    assert status == 200 and "trace" not in doc


def test_v1_routes_ignore_trace(served, tiny_score_store):
    """The frozen v1 wire format must not grow a trace key."""
    server, _service, _entries = served
    pid, cell, tech = _known_key(tiny_score_store)
    status, _headers, doc = _json(
        server,
        "GET",
        f"/v1/claim?provider_id={pid}&cell={cell}&technology={tech}&trace=1",
    )
    assert status == 200 and "trace" not in doc


# -- request id echo ----------------------------------------------------------


def test_request_id_header_and_v2_error_body(served):
    server, _service, _entries = served
    status, headers, doc = _json(server, "GET", "/v2/claims/abc/2/3")
    assert status == 400
    assert doc["request_id"] == headers["X-Request-Id"]
    # Distinct requests get distinct ids.
    _status, headers2, doc2 = _json(server, "GET", "/v2/claims/abc/2/3")
    assert doc2["request_id"] != doc["request_id"]


def test_v1_error_body_stays_frozen(served):
    """v1 errors keep the golden ``{"error": ...}`` shape bitwise; the
    request id rides only in the header."""
    server, _service, _entries = served
    status, headers, raw = _raw(server, "GET", "/v1/claim")
    assert status == 400
    doc = json.loads(raw)
    assert sorted(doc) == ["error"]
    assert headers.get("X-Request-Id")


def _logged(entries, request_id, timeout_s=5.0):
    """The entry for ``request_id`` — the sink fires just *after* the
    response bytes flush, so the client may observe the response first."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        found = next(
            (e for e in entries if e["request_id"] == request_id), None
        )
        if found is not None:
            return found
        time.sleep(0.005)
    raise AssertionError(f"no access-log entry for {request_id!r}")


def test_access_log_entries(served, tiny_score_store):
    server, _service, entries = served
    pid, cell, tech = _known_key(tiny_score_store)
    status, headers, _doc = _json(server, "GET", f"/v2/claims/{pid}/{cell}/{tech}")
    assert status == 200
    entry = _logged(entries, headers["X-Request-Id"])
    assert entry["method"] == "GET"
    assert entry["route"] == "/v2/claims/{provider_id}/{cell}/{technology}"
    assert entry["status"] == 200
    assert entry["duration_ms"] > 0
    # 404s log too, under the bounded "unmatched" route label.
    _status, headers, _doc = _json(server, "GET", "/nope")
    entry = _logged(entries, headers["X-Request-Id"])
    assert entry["route"] == "unmatched" and entry["status"] == 404


# -- /healthz enrichment ------------------------------------------------------


def test_healthz_keeps_old_keys_and_gains_metrics(served):
    server, service, _entries = served
    _json(server, "GET", "/readyz")
    _wait_recorded(service, 1)
    status, _headers, doc = _json(server, "GET", "/healthz")
    assert status == 200
    # The pre-observability surface is intact...
    assert doc["status"] == "ok"
    assert doc["n_claims"] == len(service.store)
    assert set(doc["batcher"]) == {
        "requests",
        "cache_hits",
        "coalesced",
        "batches",
        "scored",
        "max_batch",
        "deadline_drops",
    }
    # ...and the metric snapshot rides alongside.
    snap = doc["metrics"]
    assert snap["http_requests_total"] >= 1
    assert set(snap) == {
        "http_requests_total",
        "model_requests_total",
        "admission_shed_total",
        "batcher_batches_total",
    }


# -- no lost increments under concurrent scoring ------------------------------


def test_concurrent_scoring_loses_no_http_counts(served, tiny_score_store):
    server, service, _entries = served
    pid, cell, tech = _known_key(tiny_score_store)
    path = f"/v2/claims/{pid}/{cell}/{tech}"
    n_threads, n_requests = 8, 6
    statuses = []
    lock = threading.Lock()

    def client():
        for _ in range(n_requests):
            status, _headers, _doc = _json(server, "GET", path)
            with lock:
                statuses.append(status)

    before = service.registry.metrics.counter(
        "http_requests_total",
        route="/v2/claims/{provider_id}/{cell}/{technology}",
        method="GET",
        status="200",
    ).value
    threads = [threading.Thread(target=client) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert statuses == [200] * (n_threads * n_requests)
    counter = service.registry.metrics.counter(
        "http_requests_total",
        route="/v2/claims/{provider_id}/{cell}/{technology}",
        method="GET",
        status="200",
    )
    # The counter bumps just after the response flushes; give the last
    # handler threads a moment, then require exact conservation.
    deadline = time.monotonic() + 5.0
    while (
        counter.value - before < n_threads * n_requests
        and time.monotonic() < deadline
    ):
        time.sleep(0.005)
    assert counter.value - before == n_threads * n_requests
