"""The ``repro.obs.metrics`` contracts.

The load-bearing guarantees, in order: histogram quantile readouts match
``numpy.percentile``'s linear rank semantics to within bucket
resolution (a hypothesis property over arbitrary samples); no counter
increment or histogram observation is ever lost under concurrent
hammering (each instrument's own lock, no registry-wide contention);
registries refuse metric names that are not declared in the catalog
(which is what lets ``tools/check_docs.py`` guarantee the docs cover
every series that can exist); and the Prometheus text rendering is
well-formed with cumulative ``le`` buckets.
"""

import math
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.catalog import METRIC_CATALOG
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    MetricsRegistry,
    disabled,
    get_metrics,
    merge_states,
    metrics_enabled,
    render_prometheus,
)

# -- histogram quantiles vs numpy --------------------------------------------


def _bucket_width(value, bounds, lo_clamp, hi_clamp):
    """Width of the (clamped) bucket holding ``value`` — the resolution
    to which a bucketed histogram can know any order statistic."""
    import bisect

    i = bisect.bisect_left(bounds, value)
    lo = bounds[i - 1] if i > 0 else lo_clamp
    hi = bounds[i] if i < len(bounds) else hi_clamp
    return max(min(hi, hi_clamp) - max(lo, lo_clamp), 0.0)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.floats(min_value=1e-5, max_value=120.0, allow_nan=False),
        min_size=1,
        max_size=300,
    ),
    st.sampled_from([50.0, 90.0, 95.0, 99.0]),
)
def test_quantile_within_bucket_resolution_of_numpy(values, q):
    hist = Histogram(DEFAULT_LATENCY_BOUNDS)
    for v in values:
        hist.observe(v)
    estimate = hist.quantile(q)
    exact = float(np.percentile(values, q))  # linear interpolation
    # The estimate interpolates between the order statistics at the two
    # ranks bracketing the target, each known only to its bucket; the
    # error is bounded by the wider of those two (clamped) buckets.
    n = len(values)
    target = (n - 1) * q / 100.0
    ordered = sorted(values)
    lo_clamp, hi_clamp = ordered[0], ordered[-1]
    k = int(math.floor(target))
    tolerance = max(
        _bucket_width(ordered[k], DEFAULT_LATENCY_BOUNDS, lo_clamp, hi_clamp),
        _bucket_width(
            ordered[min(k + 1, n - 1)], DEFAULT_LATENCY_BOUNDS, lo_clamp, hi_clamp
        ),
    )
    assert abs(estimate - exact) <= tolerance + 1e-9
    # And always inside the observed range.
    assert lo_clamp - 1e-9 <= estimate <= hi_clamp + 1e-9


def test_quantile_edge_cases():
    hist = Histogram((1.0, 2.0))
    assert math.isnan(hist.quantile(50.0))
    hist.observe(1.5)
    assert hist.quantile(50.0) == pytest.approx(1.5)
    assert hist.quantile(99.0) == pytest.approx(1.5)
    assert hist.count == 1 and hist.sum == pytest.approx(1.5)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram((1.0, 1.0, 2.0))
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram(())


def test_percentiles_keys():
    hist = Histogram(DEFAULT_LATENCY_BOUNDS)
    for v in (0.001, 0.002, 0.004, 0.2):
        hist.observe(v)
    pct = hist.percentiles()
    assert set(pct) == {"p50", "p95", "p99"}
    assert pct["p50"] <= pct["p95"] <= pct["p99"]


# -- no lost updates under concurrency ---------------------------------------


def test_threaded_hammer_loses_no_updates():
    registry = MetricsRegistry()
    counter = registry.counter("model_scores_total", path="precomputed")
    gauge = registry.gauge("admission_peak_running")
    hist = registry.histogram("batcher_flush_seconds")
    n_threads, n_iter = 8, 5_000
    barrier = threading.Barrier(n_threads)

    def hammer(tid):
        barrier.wait()
        for i in range(n_iter):
            counter.inc()
            gauge.set_max(tid * n_iter + i)
            hist.observe(0.001 * (i % 7))

    threads = [
        threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == n_threads * n_iter
    assert hist.count == n_threads * n_iter
    assert gauge.value == (n_threads - 1) * n_iter + n_iter - 1


def test_concurrent_get_or_create_returns_one_instrument():
    registry = MetricsRegistry()
    seen = []
    barrier = threading.Barrier(8)

    def grab():
        barrier.wait()
        seen.append(registry.counter("http_requests_total", route="/x"))

    threads = [threading.Thread(target=grab) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(c is seen[0] for c in seen)


# -- catalog enforcement ------------------------------------------------------


def test_registry_refuses_uncataloged_names():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="not declared"):
        registry.counter("made_up_total")
    with pytest.raises(ValueError, match="declared as a counter"):
        registry.gauge("http_requests_total")


def test_get_or_create_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("http_requests_total", route="/a", method="GET")
    b = registry.counter("http_requests_total", method="GET", route="/a")
    c = registry.counter("http_requests_total", route="/b", method="GET")
    assert a is b and a is not c  # label order is irrelevant
    a.inc(3)
    c.inc(2)
    assert registry.total("http_requests_total") == 5.0
    assert registry.total("never_registered") == 0.0
    assert registry.names() == ["http_requests_total"]


def test_global_registry_is_a_singleton():
    assert get_metrics() is get_metrics()


# -- enable switch ------------------------------------------------------------


def test_disabled_suspends_updates():
    registry = MetricsRegistry()
    counter = registry.counter("ingest_rows_total", outcome="read")
    hist = registry.histogram("ingest_seconds")
    counter.inc()
    assert metrics_enabled()
    with disabled():
        assert not metrics_enabled()
        counter.inc(10)
        hist.observe(1.0)
    assert metrics_enabled()
    assert counter.value == 1
    assert hist.count == 0


# -- snapshot and Prometheus rendering ---------------------------------------


def _populated_registry():
    registry = MetricsRegistry()
    registry.counter("http_requests_total", route="/v2/claims", status="200").inc(4)
    registry.counter("http_requests_total", route="/v2/claims", status="404").inc(1)
    registry.gauge("batcher_max_batch", version="default").set(32)
    hist = registry.histogram("http_request_seconds", route="/v2/claims")
    for v in (0.002, 0.004, 0.008, 0.2):
        hist.observe(v)
    return registry


def test_snapshot_shape():
    snap = _populated_registry().snapshot()
    assert set(snap) == {
        "http_requests_total",
        "batcher_max_batch",
        "http_request_seconds",
    }
    fam = snap["http_requests_total"]
    assert fam["type"] == "counter" and fam["help"]
    assert sum(row["value"] for row in fam["series"]) == 5
    hist_rows = snap["http_request_seconds"]["series"]
    assert hist_rows[0]["count"] == 4
    assert hist_rows[0]["p50"] <= hist_rows[0]["p95"] <= hist_rows[0]["p99"]


def test_prometheus_rendering():
    text = _populated_registry().render_prometheus()
    lines = text.splitlines()
    assert "# HELP http_requests_total " + METRIC_CATALOG[
        "http_requests_total"
    ][1] in lines
    assert "# TYPE http_requests_total counter" in lines
    assert 'http_requests_total{route="/v2/claims",status="200"} 4' in lines
    # Histogram buckets are cumulative and end at the total count.
    buckets = [
        int(line.rsplit(" ", 1)[1])
        for line in lines
        if line.startswith("http_request_seconds_bucket")
    ]
    assert buckets == sorted(buckets) and buckets[-1] == 4
    assert any(
        line.startswith("http_request_seconds_bucket")
        and 'le="+Inf"' in line
        for line in lines
    )
    assert "http_request_seconds_count{route=\"/v2/claims\"} 4" in lines


def test_prometheus_inf_bucket_is_emitted_and_equals_count():
    """Every histogram series must end with an explicit ``le="+Inf"``
    bucket line whose cumulative value equals ``_count`` — scrapers
    reject expositions where they disagree."""
    registry = MetricsRegistry()
    hist = registry.histogram("http_request_seconds", route="/v2/claims")
    for v in (0.002, 0.2, 999.0):  # 999 only lands in the overflow bucket
        hist.observe(v)
    lines = registry.render_prometheus().splitlines()
    inf_lines = [
        line
        for line in lines
        if line.startswith("http_request_seconds_bucket") and 'le="+Inf"' in line
    ]
    count_lines = [
        line for line in lines if line.startswith("http_request_seconds_count")
    ]
    assert len(inf_lines) == 1 and len(count_lines) == 1
    assert inf_lines[0].rsplit(" ", 1)[1] == "3"
    assert count_lines[0].rsplit(" ", 1)[1] == "3"
    # +Inf is the *last* bucket line of the series.
    bucket_lines = [
        line for line in lines if line.startswith("http_request_seconds_bucket")
    ]
    assert bucket_lines[-1] == inf_lines[0]


def test_prometheus_escapes_label_values():
    r"""Backslashes, double quotes, and newlines in label values must be
    escaped (`\\`, `\"`, `\n`) or the exposition is unparseable."""
    registry = MetricsRegistry()
    registry.counter("http_requests_total", route='/a\\b"c\nd').inc(2)
    text = registry.render_prometheus()
    assert '\n' not in text.split("http_requests_total{", 1)[1].split("}", 1)[0]
    assert 'route="/a\\\\b\\"c\\nd"' in text
    assert text.count("http_requests_total{") == 1


def test_prometheus_nonfinite_values():
    registry = MetricsRegistry()
    registry.gauge("pool_workers").set(float("-inf"))
    registry.gauge("admission_peak_running").set(float("nan"))
    text = registry.render_prometheus()
    assert "pool_workers -Inf" in text
    assert "admission_peak_running NaN" in text


def test_prometheus_merge_skips_duplicate_families():
    first = _populated_registry()
    second = MetricsRegistry()
    second.counter("http_requests_total", route="/other", status="200").inc(9)
    second.counter("store_lookups_total").inc(2)
    text = render_prometheus(first, second)
    # The family declared by the first registry wins; the second's
    # duplicate is skipped rather than redeclared (invalid exposition).
    assert text.count("# TYPE http_requests_total counter") == 1
    assert 'route="/other"' not in text
    assert "store_lookups_total 2" in text


def test_every_catalog_entry_has_kind_and_help():
    for name, (kind, help_) in METRIC_CATALOG.items():
        assert kind in ("counter", "gauge", "histogram"), name
        assert help_.strip(), name


# -- mergeable state (worker-pool aggregation) --------------------------------


def _worker_like_registry(n_requests, latencies, peak):
    registry = MetricsRegistry()
    registry.counter("http_requests_total", route="/v2/claims", status="200").inc(
        n_requests
    )
    hist = registry.histogram("http_request_seconds", route="/v2/claims")
    for v in latencies:
        hist.observe(v)
    registry.gauge("admission_peak_running").set(peak)
    return registry


def test_merge_states_sums_counters_and_histograms_bucket_wise():
    a = _worker_like_registry(4, (0.002, 0.004), peak=3)
    b = _worker_like_registry(2, (0.004, 0.2, 0.4), peak=5)
    merged = merge_states(
        [a.export_state(), b.export_state()],
        labels=[{"worker": 0}, {"worker": 1}],
    )
    agg = MetricsRegistry.from_state(merged)
    assert agg.total("http_requests_total") == 6
    hist = agg.histogram("http_request_seconds", route="/v2/claims")
    assert hist.count == 5
    assert hist.sum == pytest.approx(0.002 + 0.004 + 0.004 + 0.2 + 0.4)
    # Bucket-wise: the merged cumulative +Inf bucket equals the total.
    lines = agg.render_prometheus().splitlines()
    inf = [l for l in lines if "http_request_seconds_bucket" in l and "+Inf" in l]
    assert inf[0].rsplit(" ", 1)[1] == "5"
    # Gauges stay per-source, tagged with the worker label.
    assert 'admission_peak_running{worker="0"} 3' in lines
    assert 'admission_peak_running{worker="1"} 5' in lines


def test_merge_states_gauge_collision_keeps_max():
    a = _worker_like_registry(1, (), peak=3)
    b = _worker_like_registry(1, (), peak=7)
    merged = merge_states([a.export_state(), b.export_state()])  # no labels
    agg = MetricsRegistry.from_state(merged)
    assert agg.gauge("admission_peak_running").value == 7


def test_merge_states_rejects_mismatched_bounds():
    a = MetricsRegistry()
    a.histogram("batcher_batch_size", bounds=(1, 2, 4)).observe(1)
    b = MetricsRegistry()
    b.histogram("batcher_batch_size", bounds=(1, 2, 8)).observe(1)
    with pytest.raises(ValueError, match="mismatched bounds"):
        merge_states([a.export_state(), b.export_state()])


def test_export_state_round_trips_through_from_state():
    registry = _populated_registry()
    clone = MetricsRegistry.from_state(registry.export_state())
    assert clone.snapshot() == registry.snapshot()
    assert clone.render_prometheus() == registry.render_prometheus()


def test_merge_states_requires_aligned_labels():
    with pytest.raises(ValueError, match="one-to-one"):
        merge_states([{}, {}], labels=[{"worker": 0}])
