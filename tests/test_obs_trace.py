"""The ``repro.obs.trace`` contracts.

A trace is request-scoped (contextvar-activated), builds a single-rooted
span tree with monotonic relative timings, records exceptions on the
failing span, refuses span names missing from the catalog, and costs a
single no-op when no trace is active — which is what lets the scoring
stack keep its span sites unconditionally.
"""

import threading

import pytest

from repro.obs.catalog import SPAN_CATALOG
from repro.obs.trace import (
    Trace,
    activate,
    annotate,
    current_trace,
    new_request_id,
    span,
)


def test_new_request_ids_are_short_and_unique():
    ids = {new_request_id() for _ in range(200)}
    assert len(ids) == 200
    assert all(len(i) == 16 for i in ids)


def test_span_tree_nesting_and_to_dict():
    with activate("req-1") as trace:
        assert current_trace() is trace
        with span("request", route="/v2/claims", method="GET"):
            with span("admission"):
                pass
            with span("handler"):
                with span("store_lookup", keys=5) as node:
                    node.attrs["hits"] = 4
        trace.annotate(model_version="default")
    assert current_trace() is None
    assert trace.span_names() == [
        "request",
        "admission",
        "handler",
        "store_lookup",
    ]
    doc = trace.to_dict()
    assert doc["request_id"] == "req-1"
    assert doc["model_version"] == "default"
    root = doc["spans"]
    assert root["name"] == "request"
    assert root["attrs"] == {"route": "/v2/claims", "method": "GET"}
    assert root["start_ms"] >= 0 and root["duration_ms"] >= 0
    lookup = root["children"][1]["children"][0]
    assert lookup["attrs"] == {"keys": 5, "hits": 4}
    assert lookup["duration_ms"] <= root["duration_ms"]


def test_second_top_level_span_keeps_the_tree_single_rooted():
    with activate() as trace:
        with span("request"):
            pass
        with span("batcher_flush"):
            pass
    assert trace.span_names() == ["request", "batcher_flush"]
    assert trace.to_dict()["spans"]["name"] == "request"


def test_exception_lands_on_the_failing_span():
    with activate() as trace:
        with pytest.raises(RuntimeError):
            with span("handler"):
                with span("cold_score"):
                    raise RuntimeError("boom")
    root = trace.to_dict()["spans"]
    assert root["children"][0]["attrs"]["error"] == "RuntimeError"
    assert root["attrs"]["error"] == "RuntimeError"
    # The stack unwound cleanly: both spans have an end time.
    assert root["duration_ms"] >= root["children"][0]["duration_ms"]


def test_unknown_span_name_raises():
    with activate():
        with pytest.raises(ValueError, match="SPAN_CATALOG"):
            span("made_up_span")


def test_span_is_a_noop_without_an_active_trace():
    assert current_trace() is None
    with span("request") as node:
        assert node is None  # nothing recorded, nothing raised
    annotate(ignored=True)  # no-op outside a trace


def test_traces_do_not_leak_across_threads():
    """Contextvar propagation is per-thread: a trace activated on the
    request thread is invisible to a background worker (the batcher's
    timer thread), whose spans are simply skipped."""
    seen = []

    def worker():
        seen.append(current_trace())

    with activate():
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert seen == [None]


def test_nested_activations_restore_the_outer_trace():
    with activate("outer") as outer:
        with activate("inner") as inner:
            assert current_trace() is inner
        assert current_trace() is outer


def test_catalog_covers_the_serving_spans():
    assert {
        "request",
        "admission",
        "parse_body",
        "handler",
        "store_lookup",
        "batcher_flush",
        "cold_score",
    } <= set(SPAN_CATALOG)


def test_trace_without_spans_serializes():
    trace = Trace("bare")
    assert trace.to_dict() == {"request_id": "bare"}
    assert trace.span_names() == []
