"""End-to-end scenario suite: world → model → store → service per scenario.

Every registered scenario runs through the full production path and is
checked against (a) its metamorphic invariants and (b) the committed
golden metrics.  A two-scenario smoke subset runs in tier-1; the full
sweep and the intensity-monotonicity checks carry the ``slow`` marker
(CI runs them as a separate non-blocking job — see ``docs/TESTING.md``).
"""

import os

import numpy as np
import pytest

from repro import scenarios
from repro.scenarios.goldens import (
    compare_metrics,
    default_golden_path,
    load_goldens,
    to_golden,
)

#: The tier-1 smoke subset: one filing-side injection, one label-side
#: suppression — the two mutator families.
SMOKE_SCENARIOS = ("phantom_provider", "challenge_suppressed_state")

GOLDEN_PATH = default_golden_path(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _check(scenario_suite, name):
    run = scenario_suite.run(name)
    failures = scenarios.check_invariants(run, scenario_suite.baseline)
    assert not failures, f"{name}: " + "; ".join(failures)
    goldens = load_goldens(GOLDEN_PATH)
    assert name in goldens, f"{name} missing from goldens; run tools/refresh_goldens.py"
    drift = compare_metrics(to_golden(run.metrics), goldens[name])
    assert not drift, f"{name} drifted from goldens: " + "; ".join(drift)


@pytest.mark.parametrize("name", SMOKE_SCENARIOS)
def test_scenario_smoke(scenario_suite, name):
    _check(scenario_suite, name)


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(set(scenarios.names()) - set(SMOKE_SCENARIOS)))
def test_scenario_full_sweep(scenario_suite, name):
    _check(scenario_suite, name)


def test_all_registered_scenarios_are_goldened():
    goldens = load_goldens(GOLDEN_PATH)
    assert sorted(goldens) == scenarios.names(), (
        "golden file out of sync with the registry; run tools/refresh_goldens.py"
    )


def test_smoke_scenario_service_answers_summaries(scenario_suite):
    run = scenario_suite.run("phantom_provider")
    (pid,) = run.scenario.target_provider_ids
    summary = run.service.provider_summary(pid)
    assert summary["n_claims"] == run.metrics.n_injected
    assert summary["mean_score"] > 0.0
    assert summary["top_claims"], "injected provider has no top claims"
    stats = run.service.stats()
    assert stats["n_claims"] == run.metrics.n_claims


@pytest.mark.slow
@pytest.mark.parametrize("name", ("blanket_dsl_overclaim", "overclaim_surge"))
def test_intensity_monotonicity(scenario_suite, name):
    """Injecting more overclaims must not lower the targeted providers'
    mean suspicion percentile under the fixed reference classifier."""
    baseline = scenario_suite.baseline
    low = scenarios.run_scenario(name, baseline, intensity=0.5).metrics
    high = scenario_suite.run(name).metrics  # intensity 1.0, cached
    assert low.n_injected < high.n_injected
    assert high.ref_target_mean_percentile >= (
        low.ref_target_mean_percentile - scenarios.harness.MONOTONICITY_TOL
    ), (
        f"{name}: percentile fell from {low.ref_target_mean_percentile:.1f} "
        f"(intensity 0.5) to {high.ref_target_mean_percentile:.1f} (1.0)"
    )
    # And both dominate the unmutated world (intensity -> 0).
    if high.baseline_target_mean_percentile is not None:
        assert low.ref_target_mean_percentile >= (
            low.baseline_target_mean_percentile - scenarios.harness.MONOTONICITY_TOL
        )


@pytest.mark.slow
def test_scenario_run_is_deterministic(scenario_suite):
    """Two consecutive runs of one scenario produce identical worlds,
    bitwise-identical margins, and identical golden metrics."""
    first = scenario_suite.run("phantom_provider")
    again = scenarios.run_scenario("phantom_provider", scenario_suite.baseline)
    assert again.scenario.injected_keys == first.scenario.injected_keys
    assert np.array_equal(again.store.margin, first.store.margin)
    assert np.array_equal(again.ref_store.margin, first.ref_store.margin)
    assert to_golden(again.metrics) == to_golden(first.metrics)
