"""Registry-level scenario tests: cheap, no world builds."""

import numpy as np
import pytest

from repro import scenarios
from repro.core.pipeline import PipelineHooks, _apply_hook
from repro.fcc.bdc import AvailabilityTable
from repro.scenarios.registry import ScenarioWorld, register


def test_registry_has_the_documented_scenarios():
    names = scenarios.names()
    assert len(names) >= 8
    for expected in (
        "blanket_dsl_overclaim",
        "satellite_everywhere",
        "stale_release_carryover",
        "phantom_provider",
        "border_hex_spillover",
        "challenge_suppressed_state",
        "duplicate_frn_filing",
        "speed_tier_inflation",
    ):
        assert expected in names


def test_specs_are_well_formed():
    for name in scenarios.names():
        spec = scenarios.get(name)
        assert spec.name == name
        assert spec.description
        assert 0.5 <= spec.auc_floor < 1.0
        assert spec.min_separation >= 0.0
        assert callable(spec.build)


def test_unknown_scenario_raises_with_known_names():
    with pytest.raises(KeyError, match="phantom_provider"):
        scenarios.get("no_such_scenario")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register("phantom_provider", description="dup")(lambda config, intensity: None)


def test_build_scenario_validates_intensity():
    config = scenarios.scenario_default_config()
    with pytest.raises(ValueError, match="intensity"):
        scenarios.build_scenario("phantom_provider", config, intensity=0.0)
    with pytest.raises(ValueError, match="intensity"):
        scenarios.build_scenario("phantom_provider", config, intensity=1.5)


def test_apply_hook_semantics():
    calls = []

    def mutate_in_place(ctx, artifact):
        calls.append((ctx, artifact))
        artifact.append("mutated")

    artifact = ["original"]
    out = _apply_hook(mutate_in_place, artifact, "ctx")
    assert out is artifact and out == ["original", "mutated"]

    replaced = _apply_hook(lambda ctx, artifact: ["replacement"], artifact, "ctx")
    assert replaced == ["replacement"]

    assert _apply_hook(None, artifact) is artifact


def test_pipeline_hooks_default_to_noops():
    hooks = PipelineHooks()
    assert hooks.post_universe is None
    assert hooks.post_filings is None
    assert hooks.post_challenges is None
    assert hooks.post_timeline is None


def _toy_table() -> AvailabilityTable:
    return AvailabilityTable(
        provider_id=np.array([1, 1, 2, 2], dtype=np.int64),
        bsl_id=np.arange(4, dtype=np.int64),
        technology=np.array([50, 50, 40, 40], dtype=np.int16),
        cell=np.array([10, 11, 10, 12], dtype=np.uint64),
        state_idx=np.zeros(4, dtype=np.int16),
        max_download_mbps=np.full(4, 100.0),
        max_upload_mbps=np.full(4, 20.0),
        low_latency=np.ones(4, dtype=bool),
        truly_served=np.array([True, False, True, False]),
    )


class _WorldStub:
    def __init__(self, table):
        self.table = table


def test_injected_mask_matches_materialized_keys_only():
    table = _toy_table()
    sw = ScenarioWorld(
        name="toy",
        world=_WorldStub(table),
        injected_keys=frozenset(
            {
                (1, 11, 50),  # present
                (2, 12, 40),  # present
                (9, 99, 10),  # never filed -> ignored
            }
        ),
        target_provider_ids=frozenset({1, 2}),
    )
    mask = sw.injected_mask()
    claims = table.columnar()
    assert mask.sum() == 2
    for row in np.nonzero(mask)[0]:
        assert claims.key_at(int(row)) in sw.injected_keys


def test_injected_mask_empty_when_nothing_injected():
    sw = ScenarioWorld(
        name="toy",
        world=_WorldStub(_toy_table()),
        injected_keys=frozenset(),
        target_provider_ids=frozenset(),
    )
    assert not sw.injected_mask().any()
