"""Seed-stability regression: ``build_world(config)`` is a pure function.

Scenario goldens are reproducible *by construction* only if the world
underneath them is: building the same config twice must yield bitwise
identical filings, identical challenge/timeline records, and identical
crowdsource artifacts.  A drift here (an unseeded RNG, dict-order
dependence, a global cache leaking between builds) would silently
invalidate every committed golden, so it fails loudly instead.
"""

import numpy as np

from repro.core import build_world

_TABLE_ARRAYS = (
    "provider_id",
    "bsl_id",
    "technology",
    "cell",
    "state_idx",
    "max_download_mbps",
    "max_upload_mbps",
    "low_latency",
    "truly_served",
)


def test_build_world_twice_is_bitwise_identical(scenario_suite):
    first = scenario_suite.baseline.world
    again = build_world(first.config)

    for name in _TABLE_ARRAYS:
        a, b = getattr(first.table, name), getattr(again.table, name)
        assert a.dtype == b.dtype, f"table.{name} dtype drifted"
        assert np.array_equal(a, b), f"table.{name} not bitwise identical"

    assert first.challenges == again.challenges
    assert first.timeline.initial_claims == again.timeline.initial_claims
    assert first.timeline.removals == again.timeline.removals
    assert first.timeline.n_minor_releases == again.timeline.n_minor_releases
    assert first.changes == again.changes
    assert first.coverage_scores == again.coverage_scores
    assert first.mlab_tests == again.mlab_tests
    assert first.ookla_tiles == again.ookla_tiles
    assert [p.provider_id for p in first.universe.providers] == [
        p.provider_id for p in again.universe.providers
    ]
    assert first.universe.footprints == again.universe.footprints
