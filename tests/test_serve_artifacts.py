"""Artifact-bundle round-trips: saved+reloaded models are bitwise exact."""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NBMIntegrityModel
from repro.ml.gbdt import GBDTParams, GradientBoostedClassifier
from repro.ml.shap import shap_values
from repro.ml.tree import FlatEnsemble, HistogramBinner
from repro.serve.artifacts import (
    ARRAYS_NAME,
    MANIFEST_NAME,
    load_model_artifacts,
    save_model_artifacts,
)


def _problem(n, d, seed=0, missing=0.1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    if missing:
        X[rng.random((n, d)) < missing] = np.nan
    y = (np.nan_to_num(X[:, 0]) + rng.normal(scale=0.5, size=n) > 0).astype(float)
    return X, y


# -- component round-trips ---------------------------------------------------


def test_binner_state_roundtrip_bitwise():
    X, _ = _problem(500, 7, seed=3)
    binner = HistogramBinner(max_bins=32).fit(X)
    clone = HistogramBinner.from_state(binner.export_state())
    assert clone.max_bins == binner.max_bins
    assert len(clone.split_values_) == len(binner.split_values_)
    for a, b in zip(clone.split_values_, binner.split_values_):
        assert np.array_equal(a, b)
    assert np.array_equal(clone.transform(X), binner.transform(X))


def test_binner_from_state_rejects_inconsistent_offsets():
    X, _ = _problem(100, 3)
    state = HistogramBinner(max_bins=8).fit(X).export_state()
    bad = dict(state)
    bad["cut_offsets"] = state["cut_offsets"][:-1]
    with pytest.raises(ValueError):
        HistogramBinner.from_state(bad)


def test_flat_ensemble_array_roundtrip_and_tree_split():
    X, y = _problem(600, 6, seed=1)
    clf = GradientBoostedClassifier(GBDTParams(n_estimators=8, max_depth=4)).fit(X, y)
    ens = clf.flat_ensemble
    clone = FlatEnsemble.from_arrays(ens.export_arrays())
    assert np.array_equal(clone.predict_margin(X), ens.predict_margin(X))
    # to_trees() -> from_trees() reproduces the concatenated arrays exactly
    # (leaf thresholds are NaN, hence equal_nan on the float fields).
    rebuilt = FlatEnsemble.from_trees(ens.to_trees())
    for name, _ in FlatEnsemble.EXPORT_FIELDS:
        a, b = getattr(rebuilt, name), getattr(ens, name)
        if a.dtype.kind == "f":
            assert np.array_equal(a, b, equal_nan=True), name
        else:
            assert np.array_equal(a, b), name


def test_flat_ensemble_from_arrays_rejects_malformed():
    X, y = _problem(300, 4)
    ens = (
        GradientBoostedClassifier(GBDTParams(n_estimators=3, max_depth=3))
        .fit(X, y)
        .flat_ensemble
    )
    arrays = ens.export_arrays()
    truncated = dict(arrays)
    truncated["values"] = arrays["values"][:-1]
    with pytest.raises(ValueError):
        FlatEnsemble.from_arrays(truncated)
    wild = {k: v.copy() for k, v in arrays.items()}
    wild["children_left"][0] = 10**9
    with pytest.raises(ValueError):
        FlatEnsemble.from_arrays(wild)


# -- bundle round-trips (property) -------------------------------------------


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_estimators=st.integers(2, 12),
    max_depth=st.integers(2, 5),
    max_bins=st.sampled_from([8, 32, 64]),
)
def test_bundle_roundtrip_margins_bitwise(tmp_path_factory, seed, n_estimators, max_depth, max_bins):
    X, y = _problem(400, 5, seed=seed)
    params = GBDTParams(
        n_estimators=n_estimators,
        max_depth=max_depth,
        max_bins=max_bins,
        learning_rate=0.3,
        random_state=seed,
    )
    clf = GradientBoostedClassifier(params).fit(X, y)
    path = str(tmp_path_factory.mktemp("bundle"))
    save_model_artifacts(path, clf)
    loaded = load_model_artifacts(path).classifier

    assert loaded.params == clf.params
    assert loaded.base_margin == clf.base_margin
    # Float path, binned path, and the orderings they induce.
    m = clf.predict_margin(X)
    assert np.array_equal(loaded.predict_margin(X), m)
    codes = clf.binner.transform(X)
    assert np.array_equal(
        loaded.predict_margin(codes, binned=True),
        clf.predict_margin(codes, binned=True),
    )
    assert np.array_equal(
        np.argsort(-loaded.predict_margin(X), kind="stable"),
        np.argsort(-m, kind="stable"),
    )


def test_bundle_roundtrip_shap_bitwise(tmp_path):
    X, y = _problem(250, 5, seed=11)
    clf = GradientBoostedClassifier(GBDTParams(n_estimators=6, max_depth=3)).fit(X, y)
    save_model_artifacts(str(tmp_path), clf)
    loaded = load_model_artifacts(str(tmp_path)).classifier
    live = shap_values(clf, X[:40])
    again = shap_values(loaded, X[:40])
    assert np.array_equal(live.values, again.values)
    assert live.expected_value == again.expected_value
    assert np.array_equal(
        clf.feature_importances_, loaded.feature_importances_
    )


def test_bundle_contains_no_pickle(tmp_path):
    X, y = _problem(200, 4)
    clf = GradientBoostedClassifier(GBDTParams(n_estimators=3)).fit(X, y)
    save_model_artifacts(str(tmp_path), clf)
    # allow_pickle=False is the loader's contract; loading must not need it.
    with np.load(os.path.join(str(tmp_path), ARRAYS_NAME), allow_pickle=False) as z:
        assert all(z[k].dtype != object for k in z.files)
    manifest = json.load(open(os.path.join(str(tmp_path), MANIFEST_NAME)))
    assert manifest["kind"] == "nbm-integrity-model"
    assert manifest["n_trees"] == 3


def test_load_rejects_wrong_kind_and_schema(tmp_path):
    X, y = _problem(150, 3)
    clf = GradientBoostedClassifier(GBDTParams(n_estimators=2)).fit(X, y)
    save_model_artifacts(str(tmp_path), clf)
    manifest_path = os.path.join(str(tmp_path), MANIFEST_NAME)
    manifest = json.load(open(manifest_path))
    for patch in ({"kind": "something-else"}, {"schema": 99}):
        bad = {**manifest, **patch}
        json.dump(bad, open(manifest_path, "w"))
        with pytest.raises(ValueError):
            load_model_artifacts(str(tmp_path))
    with pytest.raises(FileNotFoundError):
        load_model_artifacts(str(tmp_path / "nowhere"))


def test_save_unfitted_raises(tmp_path):
    with pytest.raises(RuntimeError):
        save_model_artifacts(str(tmp_path), GradientBoostedClassifier())


# -- NBMIntegrityModel wrappers + encoder state ------------------------------


def test_model_save_load_bitwise_on_world(tmp_path, tiny_model, tiny_builder, tiny_dataset):
    model, split = tiny_model
    path = str(tmp_path / "bundle")
    model.save(path)

    obs = split.test(tiny_dataset)[:300]
    X = tiny_builder.vectorize(obs)
    loaded = NBMIntegrityModel.load(path)
    assert loaded.is_fitted
    assert loaded.params == model.params
    assert np.array_equal(
        loaded.classifier.predict_margin(X), model.classifier.predict_margin(X)
    )
    assert np.array_equal(
        loaded.classifier.predict_margin(X, binned=True),
        model.classifier.predict_margin(X, binned=True),
    )
    assert loaded.feature_names == model.feature_names
    # Builder-less models refuse observation-level entry points loudly.
    with pytest.raises(RuntimeError, match="FeatureBuilder"):
        loaded.predict_proba(obs)

    # With a live builder attached, observation scoring matches bitwise.
    with_builder = NBMIntegrityModel.load(path, builder=tiny_builder)
    assert np.array_equal(
        with_builder.predict_proba(obs), model.predict_proba(obs)
    )


def test_builderless_resave_keeps_feature_names(tmp_path, tiny_model):
    model, _ = tiny_model
    first = str(tmp_path / "first")
    second = str(tmp_path / "second")
    model.save(first)
    reloaded = NBMIntegrityModel.load(first)  # no builder attached
    reloaded.save(second)
    again = NBMIntegrityModel.load(second)
    assert again.feature_names == model.feature_names


def test_model_save_unfitted_raises(tmp_path, tiny_builder):
    model = NBMIntegrityModel(tiny_builder)
    with pytest.raises(RuntimeError, match="unfitted"):
        model.save(str(tmp_path))


def test_encoder_state_restore_rejects_mismatch(tmp_path, tiny_model, tiny_world):
    from repro.features.vectorize import FeatureBuilder

    model, _ = tiny_model
    path = str(tmp_path / "bundle")
    model.save(path)
    other_dim = FeatureBuilder(
        fabric=tiny_world.fabric,
        universe=tiny_world.universe,
        table=tiny_world.table,
        coverage_scores=tiny_world.coverage_scores,
        localization=tiny_world.localization,
        embedding_dim=tiny_world.config.embedding_dim + 1,
    )
    with pytest.raises(ValueError, match="embedder spec"):
        load_model_artifacts(path, builder=other_dim)


def test_encoder_state_warms_fresh_builder(tmp_path, tiny_model, tiny_world, tiny_dataset):
    from repro.features.vectorize import FeatureBuilder

    model, split = tiny_model
    path = str(tmp_path / "bundle")
    model.save(path)
    fresh = FeatureBuilder(
        fabric=tiny_world.fabric,
        universe=tiny_world.universe,
        table=tiny_world.table,
        coverage_scores=tiny_world.coverage_scores,
        localization=tiny_world.localization,
        embedding_dim=tiny_world.config.embedding_dim,
    )
    assert not fresh._embeddings
    load_model_artifacts(path, builder=fresh)
    # Caches restored: every provider the trained builder embedded is warm,
    # and vectorization agrees bitwise with the original builder.
    assert fresh._embeddings.keys() == model.builder._embeddings.keys()
    obs = split.test(tiny_dataset)[:100]
    assert np.array_equal(
        fresh.vectorize(obs), model.builder.vectorize(obs)
    )
