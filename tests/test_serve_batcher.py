"""MicroBatcher: coalescing, dedup, LRU caching, failure delivery."""

import threading

import pytest

from repro.serve.batcher import MicroBatcher


class CountingScorer:
    def __init__(self, fn=None):
        self.calls = 0
        self.batch_sizes = []
        self.fn = fn or (lambda p: p * 10)

    def __call__(self, payloads):
        self.calls += 1
        self.batch_sizes.append(len(payloads))
        return [self.fn(p) for p in payloads]


def make(scorer, **kw):
    kw.setdefault("max_delay_s", 0.0)  # manual flushing in tests
    return MicroBatcher(scorer, **kw)


def test_score_many_is_one_batch():
    scorer = CountingScorer()
    batcher = make(scorer)
    results = batcher.score_many(list(range(50)))
    assert results == [p * 10 for p in range(50)]
    assert scorer.calls == 1
    assert batcher.stats.scored == 50
    assert batcher.stats.max_batch == 50


def test_max_batch_triggers_auto_flush():
    scorer = CountingScorer()
    batcher = make(scorer, max_batch=4)
    futures = [batcher.submit(i) for i in range(4)]
    # Hitting max_batch flushed without an explicit flush() call.
    assert all(f.done() for f in futures)
    assert scorer.calls == 1
    assert scorer.batch_sizes == [4]


def test_cache_hits_skip_scoring():
    scorer = CountingScorer()
    batcher = make(scorer)
    first = batcher.score_many([7], cache_keys=["seven"])
    assert scorer.calls == 1
    again = batcher.submit(7, cache_key="seven")
    assert again.done() and again.result() == first[0]
    assert scorer.calls == 1  # no second scorer call
    assert batcher.stats.cache_hits == 1


def test_cache_eviction_is_lru():
    scorer = CountingScorer()
    batcher = make(scorer, cache_size=2)
    batcher.score_many([1, 2], cache_keys=["a", "b"])
    batcher.submit(1, cache_key="a")  # refresh "a"
    batcher.score_many([3], cache_keys=["c"])  # evicts "b" (least recent)
    calls = scorer.calls
    hit = batcher.submit(1, cache_key="a")
    assert hit.done()  # "a" survived its refresh
    assert scorer.calls == calls
    batcher.submit(2, cache_key="b")
    batcher.flush()
    assert scorer.calls == calls + 1  # "b" was evicted and re-scored


def test_duplicate_keys_coalesce_within_batch():
    scorer = CountingScorer()
    batcher = make(scorer)
    futs = [batcher.submit(5, cache_key="k") for _ in range(6)]
    batcher.flush()
    assert scorer.batch_sizes == [1]  # one payload row for six waiters
    assert [f.result() for f in futs] == [50] * 6
    assert batcher.stats.coalesced == 5


def test_uncached_payloads_are_not_deduplicated():
    scorer = CountingScorer()
    batcher = make(scorer)
    results = batcher.score_many([5, 5, 5])  # no cache keys
    assert results == [50, 50, 50]
    assert scorer.batch_sizes == [3]


def test_scorer_failure_reaches_every_waiter():
    def boom(payloads):
        raise RuntimeError("scorer exploded")

    batcher = make(boom)
    futs = [batcher.submit(i, cache_key=i) for i in range(3)]
    batcher.flush()
    for fut in futs:
        with pytest.raises(RuntimeError, match="exploded"):
            fut.result(timeout=1)
    # The batch is consumed; the batcher keeps working afterwards.
    ok = MicroBatcher(CountingScorer(), max_delay_s=0.0)
    assert ok.score_many([1]) == [10]


def test_per_payload_exception_fails_only_its_waiters():
    def scorer(payloads):
        return [
            ValueError(f"bad payload {p}") if p < 0 else p * 10 for p in payloads
        ]

    batcher = make(scorer)
    good = batcher.submit(1, cache_key=1)
    bad = batcher.submit(-1, cache_key=-1)
    also_good = batcher.submit(2, cache_key=2)
    batcher.flush()
    assert good.result(timeout=1) == 10
    assert also_good.result(timeout=1) == 20
    with pytest.raises(ValueError, match="bad payload"):
        bad.result(timeout=1)
    # Exceptions are never cached: the retry scores again.
    retry = batcher.submit(-1, cache_key=-1)
    assert not retry.done()
    batcher.flush()
    with pytest.raises(ValueError):
        retry.result(timeout=1)


def test_result_count_mismatch_is_an_error():
    batcher = make(lambda payloads: payloads[:-1])
    fut = batcher.submit(1)
    batcher.flush()
    with pytest.raises(RuntimeError, match="results"):
        fut.result(timeout=1)


def test_concurrent_submitters_coalesce():
    scorer = CountingScorer()
    batcher = MicroBatcher(scorer, max_batch=64, max_delay_s=0.02)
    barrier = threading.Barrier(8)
    results = {}

    def worker(i):
        barrier.wait()
        results[i] = batcher.submit(i, cache_key=i).result(timeout=5)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert results == {i: i * 10 for i in range(8)}
    # All eight requests landed in strictly fewer scorer calls than a
    # request-per-call path would need.
    assert scorer.calls < 8
    assert sum(scorer.batch_sizes) == 8


def test_timer_flushes_without_explicit_flush():
    scorer = CountingScorer()
    batcher = MicroBatcher(scorer, max_delay_s=0.005)
    fut = batcher.submit(3, cache_key=3)
    assert fut.result(timeout=2) == 30
    assert scorer.calls == 1


def test_invalidate_clears_cache():
    scorer = CountingScorer()
    batcher = make(scorer)
    batcher.score_many([1], cache_keys=["k"])
    batcher.invalidate()
    batcher.submit(1, cache_key="k")
    batcher.flush()
    assert scorer.calls == 2


def test_close_rejects_new_work():
    batcher = make(CountingScorer())
    batcher.close()
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit(1)


def test_validation():
    with pytest.raises(ValueError):
        MicroBatcher(lambda p: p, max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(lambda p: p, max_delay_s=-1)
