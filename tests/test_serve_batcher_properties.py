"""Hypothesis property tests for :class:`repro.serve.batcher.MicroBatcher`.

Two liveness/safety properties the unit tests can't pin down:

1. **Exactly-once under submit/close races** — with submitter threads
   racing ``close()``, every accepted payload is scored exactly once and
   its Future resolves; every rejected submit raises, and nothing is
   stranded in the queue with a forever-pending Future.
2. **Poison isolation** — a payload whose result slot is an exception
   instance fails *only* its own waiters: batchmates resolve normally,
   and the poisoned result is never cached (a retry rescrores it).
"""

import threading
from concurrent.futures import Future

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.batcher import MicroBatcher
from repro.serve.resilience import Deadline, DeadlineExceeded


class _RecordingScorer:
    """Scores payloads to ("ok", payload), recording every batch."""

    def __init__(self, poison=frozenset()):
        self.batches = []
        self.poison = frozenset(poison)
        self._lock = threading.Lock()

    def __call__(self, payloads):
        with self._lock:
            self.batches.append(list(payloads))
        return [
            ValueError(f"poisoned payload {p}") if p in self.poison else ("ok", p)
            for p in payloads
        ]

    @property
    def scored(self):
        with self._lock:
            return [p for batch in self.batches for p in batch]


@settings(max_examples=20, deadline=None)
@given(
    n_threads=st.integers(min_value=1, max_value=6),
    per_thread=st.integers(min_value=1, max_value=12),
    max_batch=st.integers(min_value=1, max_value=8),
    close_after=st.integers(min_value=0, max_value=40),
)
def test_close_race_delivers_every_accepted_payload_exactly_once(
    n_threads, per_thread, max_batch, close_after
):
    """Submitters racing close(): accepted => scored once and resolved;
    rejected => RuntimeError; no Future left pending."""
    scorer = _RecordingScorer()
    # max_delay_s=0 disables the timer: the only flush paths are the
    # max_batch trigger and close()'s final drain, so a payload stranded
    # by a close/submit race would hang its Future forever.
    batcher = MicroBatcher(scorer, max_batch=max_batch, max_delay_s=0.0)
    accepted: dict[int, Future] = {}
    rejected: list[int] = []
    lock = threading.Lock()
    start = threading.Barrier(n_threads + 1)

    def submitter(base):
        start.wait()
        for i in range(per_thread):
            payload = base * 1000 + i
            try:
                fut = batcher.submit(payload, cache_key=payload)
            except RuntimeError:
                with lock:
                    rejected.append(payload)
            else:
                with lock:
                    accepted[payload] = fut

    threads = [
        threading.Thread(target=submitter, args=(t,)) for t in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    start.wait()
    # Let roughly close_after submissions land before closing.
    while close_after and len(accepted) + len(rejected) < min(
        close_after, n_threads * per_thread
    ):
        pass
    batcher.close()
    for thread in threads:
        thread.join()

    # Everything accepted resolved to its own result; nothing pending.
    for payload, fut in accepted.items():
        assert fut.done(), f"payload {payload} stranded with a pending Future"
        assert fut.result(timeout=0) == ("ok", payload)
    # Exactly-once scoring: accepted payloads each appear in exactly one
    # batch; rejected payloads never reach the scorer.
    scored = scorer.scored
    assert sorted(scored) == sorted(accepted)
    assert not set(rejected) & set(scored)
    with pytest.raises(RuntimeError):
        batcher.submit(-1)


@settings(max_examples=25, deadline=None)
@given(
    payloads=st.lists(
        st.integers(min_value=0, max_value=99), min_size=1, max_size=30, unique=True
    ),
    data=st.data(),
)
def test_poisoned_payload_never_leaks_to_batchmates(payloads, data):
    poison = data.draw(st.sets(st.sampled_from(payloads)))
    scorer = _RecordingScorer(poison=poison)
    batcher = MicroBatcher(scorer, max_batch=len(payloads) + 1, max_delay_s=0.0)
    futures = {p: batcher.submit(p, cache_key=p) for p in payloads}
    batcher.flush()

    for payload, fut in futures.items():
        if payload in poison:
            with pytest.raises(ValueError, match=f"poisoned payload {payload}"):
                fut.result(timeout=0)
        else:
            assert fut.result(timeout=0) == ("ok", payload)

    # Clean results were cached; poisoned ones were not, so a retry
    # rescrores exactly the poisoned payloads.
    retry = {p: batcher.submit(p, cache_key=p) for p in payloads}
    batcher.flush()
    rescored = [p for batch in scorer.batches[1:] for p in batch]
    assert sorted(rescored) == sorted(poison)
    for payload, fut in retry.items():
        if payload in poison:
            with pytest.raises(ValueError):
                fut.result(timeout=0)
        else:
            assert fut.result(timeout=0) == ("ok", payload)
    batcher.close()


class _TickingClock:
    """Injectable monotonic clock that advances on *every* read.

    Each ``Deadline.expired`` check observes a strictly later time, so a
    deadline can flip from live to expired *between* two checks inside
    one ``flush()`` — the exact race a wall clock only produces under
    load.  A flush that samples expiry more than once per slot will,
    for some drawn expiry offset, classify the same slot both ways.
    """

    def __init__(self, start=0.0, tick=1.0):
        self.now = float(start)
        self.tick = float(tick)
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            t = self.now
            self.now += self.tick
            return t


@settings(max_examples=60, deadline=None)
@given(
    offsets=st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=40)),
        min_size=1,
        max_size=12,
    ),
    tick=st.sampled_from([0.0, 0.5, 1.0, 3.0]),
)
def test_deadline_expiring_mid_flush_is_dropped_exactly_once(offsets, tick):
    """A slot whose deadline expires between the expiry scan and the
    score call is counted exactly once in ``batcher_deadline_drops_total``:
    no double-drop, no stranded/InvalidState future, and the scorer never
    sees a dropped payload."""
    clock = _TickingClock(start=0.0, tick=tick)
    scorer = _RecordingScorer()
    batcher = MicroBatcher(scorer, max_batch=len(offsets) + 1, max_delay_s=0.0)
    futures = {}
    for i, offset in enumerate(offsets):
        deadline = (
            None if offset is None else Deadline(float(offset), clock=clock)
        )
        futures[i] = batcher.submit(i, cache_key=i, deadline=deadline)
    # flush() must never leak InvalidStateError from settling a slot it
    # already failed — the signature of double-classifying one slot.
    batcher.flush()

    dropped, served = set(), set()
    for i, fut in futures.items():
        assert fut.done(), f"slot {i} stranded with a pending Future"
        exc = fut.exception(timeout=0)
        if exc is not None:
            assert isinstance(exc, DeadlineExceeded)
            dropped.add(i)
        else:
            assert fut.result(timeout=0) == ("ok", i)
            served.add(i)
    # Slots with no deadline can never be dropped.
    assert all(offsets[i] is not None for i in dropped)
    # The scorer saw exactly the served payloads, each exactly once.
    assert sorted(scorer.scored) == sorted(served)
    # The drop counter agrees exactly with the delivered exceptions.
    assert batcher.stats.deadline_drops == len(dropped)
    batcher.close()


def test_submit_racing_the_final_close_flush_is_never_stranded():
    """Deterministic interleaving of the close/submit race.

    The scorer blocks mid-way through close()'s final drain while another
    thread submits.  The batcher must linearize the race: the submit
    either raises (close won) or its payload is delivered — it must not
    be silently accepted into a queue nothing will ever flush again.
    """
    in_score = threading.Event()
    submitted = threading.Event()
    raced = []

    def scorer(payloads):
        if not raced:
            raced.append(True)
            in_score.set()
            assert submitted.wait(timeout=5)
        return [("ok", p) for p in payloads]

    batcher = MicroBatcher(scorer, max_batch=100, max_delay_s=0.0)
    batcher.submit(1, cache_key=1)
    outcome = {}

    def racer():
        assert in_score.wait(timeout=5)
        try:
            outcome["fut"] = batcher.submit(2, cache_key=2)
        except RuntimeError as exc:
            outcome["rejected"] = exc
        finally:
            submitted.set()

    thread = threading.Thread(target=racer)
    thread.start()
    batcher.close()
    thread.join()

    if "fut" in outcome:
        fut = outcome["fut"]
        assert fut.done(), "payload accepted during close was stranded forever"
        assert fut.result(timeout=0) == ("ok", 2)
    else:
        assert isinstance(outcome["rejected"], RuntimeError)


def test_close_is_idempotent_and_drains():
    scorer = _RecordingScorer()
    batcher = MicroBatcher(scorer, max_batch=100, max_delay_s=0.0)
    fut = batcher.submit(7, cache_key=7)
    batcher.close()
    assert fut.result(timeout=0) == ("ok", 7)
    batcher.close()  # second close is a no-op, not an error
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit(8)
