"""Chaos smoke: the serving invariant under every committed fault plan.

:func:`repro.scenarios.harness.check_fault_invariants` serves a
two-version registry through a live HTTP server with deterministic
faults injected at every seam (store reads, cold scoring, batch
flushes), a hair-trigger breaker, a tight admission gate, and short
deadlines — while readers hammer the data routes and a swapper flips the
default version.  The invariant: every response is *correct for exactly
one version*, *shed with a Retry-After*, or *explicitly degraded* —
never a 500 and never a mixed-version body.

These are tier-1 tests: both committed chaos plans run on every CI push
(the acceptance criterion for the resilience work), plus one run over a
scenario-harness store to tie the chaos instrument to the adversarial
suite.
"""

import pytest

from repro.scenarios.harness import (
    check_fault_invariants,
    check_pool_fault_invariants,
)
from repro.serve import chaos_plan_names


@pytest.mark.parametrize("plan_name", chaos_plan_names())
def test_chaos_plan_holds_serving_invariants(
    tiny_model, tiny_builder, tiny_score_store, plan_name
):
    model, _split = tiny_model
    failures = check_fault_invariants(
        tiny_score_store,
        classifier=model.classifier,
        builder=tiny_builder,
        plan_name=plan_name,
    )
    assert failures == []


def test_chaos_without_cold_path_still_degrades_cleanly(tiny_score_store):
    """Store-only serving (no classifier/builder): the same invariant
    must hold when every fault lands on precomputed reads."""
    failures = check_fault_invariants(tiny_score_store, plan_name="flush_stall")
    assert failures == []


def test_chaos_store_read_faults_on_mmap_backed_store(
    tmp_path, tiny_score_store
):
    """The ``store_read_flaky`` plan against a store served straight off
    mapped shard files (single-shard bundle, genuinely zero-copy): every
    injected read error must surface as an explicitly *degraded* response
    — degraded stays degraded, never a 500."""
    from conftest import mmap_backed
    from repro.serve import ClaimScoreStore

    root = str(tmp_path / "store")
    tiny_score_store.save_sharded(root, shards=1)
    store = ClaimScoreStore.load_sharded(root, mmap=True)
    assert mmap_backed(store.claims.provider_id)
    failures = check_fault_invariants(store, plan_name="store_read_flaky")
    assert failures == []


def test_pool_chaos_swap_and_kill_churn(tmp_path, tiny_score_store):
    """The multi-worker chaos run: a pre-fork fleet under injected store
    faults, fleet-wide two-phase swaps, and SIGKILL churn.  Responses
    stay version-consistent, sheds carry Retry-After, killed workers
    respawn onto the current default, and the fault plans verifiably
    fired inside the workers."""
    failures = check_pool_fault_invariants(tiny_score_store, str(tmp_path))
    assert failures == []


def test_chaos_on_scenario_store(scenario_suite):
    """The chaos instrument composed with the adversarial suite: a
    scenario-built store (injected overclaims and all) serves correctly
    under the cold-flaky plan."""
    run = scenario_suite.run("phantom_provider")
    failures = check_fault_invariants(
        run.store,
        classifier=run.model.classifier,
        builder=run.builder,
        plan_name="cold_flaky",
    )
    assert failures == []
