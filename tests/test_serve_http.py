"""HTTP API tests: every endpoint's success path and failure modes.

The contract under test: failures are always JSON ``{"error": ...}``
bodies with the right status (400 malformed, 404 unknown, 413 oversize)
— malformed input must never surface as a 500 or a traceback.
"""

import json

import http.client

import pytest

from repro.serve import AuditService


@pytest.fixture(scope="module")
def served(tiny_model, tiny_builder, tiny_score_store, ephemeral_server):
    """A live server over the tiny world's score store (cold path on)."""
    model, _split = tiny_model
    service = AuditService.from_model(model, store=tiny_score_store)
    with ephemeral_server(service) as server:
        yield server, service
    service.close()


@pytest.fixture(scope="module")
def store_only_served(tiny_score_store, ephemeral_server):
    """A live server with no live classifier/builder (no cold path)."""
    service = AuditService(tiny_score_store)
    with ephemeral_server(service) as server:
        yield server, service
    service.close()


def _request(server, method, path, body=None, headers=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        payload = response.read()
        return response.status, response.getheader("Content-Type"), payload
    finally:
        conn.close()


def _json(server, method, path, body=None, headers=None):
    status, ctype, payload = _request(server, method, path, body, headers)
    assert ctype == "application/json", f"{method} {path} returned {ctype}"
    return status, json.loads(payload)


def _known_key(store):
    row = int(store.sus_order[0])
    return store.claims.key_at(row)


# -- success paths -----------------------------------------------------------


def test_healthz_and_stats(served):
    from repro.serve.http import MAX_BODY_BYTES, MAX_RESULT_ROWS

    server, service = served
    status, doc = _json(server, "GET", "/healthz")
    assert status == 200
    assert doc["status"] == "ok" and doc["n_claims"] == len(service.store)
    # The request caps are surfaced so clients can size their batches.
    assert doc["limits"]["max_result_rows"] == MAX_RESULT_ROWS
    assert doc["limits"]["max_body_bytes"] == MAX_BODY_BYTES
    status, doc = _json(server, "GET", "/v1/stats")
    assert status == 200 and doc["n_claims"] == len(service.store)
    assert doc["cold_path_available"] is True


def test_claim_lookup_roundtrip(served, tiny_score_store):
    server, _service = served
    pid, cell, tech = _known_key(tiny_score_store)
    status, doc = _json(
        server, "GET", f"/v1/claim?provider_id={pid}&cell={cell}&technology={tech}"
    )
    assert status == 200
    assert doc["provider_id"] == pid and doc["precomputed"] is True
    assert doc["rank"] == 0


def test_claim_cold_path_for_unknown_claim(served, tiny_score_store):
    import numpy as np

    server, _service = served
    pid, cell, _tech = _known_key(tiny_score_store)
    missing = next(
        t
        for t in (10, 40, 50, 70, 71)
        if tiny_score_store.positions(
            np.array([pid]), np.array([cell], dtype=np.uint64), np.array([t])
        )[0]
        < 0
    )
    status, doc = _json(
        server,
        "GET",
        f"/v1/claim?provider_id={pid}&cell={cell}&technology={missing}&state=TX",
    )
    assert status == 200 and doc["precomputed"] is False
    assert 0.0 <= doc["percentile"] <= 100.0


def test_top_and_summaries(served, tiny_score_store):
    server, _service = served
    status, doc = _json(server, "GET", "/v1/top?k=3")
    assert status == 200 and len(doc["results"]) == 3
    scores = [r["score"] for r in doc["results"]]
    assert scores == sorted(scores, reverse=True)

    pid, _cell, _tech = _known_key(tiny_score_store)
    status, doc = _json(server, "GET", f"/v1/provider/{pid}/summary")
    assert status == 200 and doc["provider_id"] == pid and doc["n_claims"] > 0
    state = doc["top_claims"][0]["state"]
    status, doc = _json(server, "GET", f"/v1/state/{state}/summary")
    assert status == 200 and doc["state"] == state


def test_bulk_score_mixes_hits_and_misses(served, tiny_score_store):
    server, _service = served
    pid, cell, tech = _known_key(tiny_score_store)
    body = json.dumps(
        {
            "claims": [
                {"provider_id": pid, "cell": cell, "technology": tech},
                {"provider_id": 1, "cell": 2, "technology": 3},
            ]
        }
    )
    status, doc = _json(server, "POST", "/v1/score", body=body)
    assert status == 200
    hit, miss = doc["results"]
    assert hit["provider_id"] == pid and miss is None


# -- failure modes, GET ------------------------------------------------------


@pytest.mark.parametrize(
    "path",
    [
        "/v1/claim",  # all params missing
        "/v1/claim?provider_id=1&cell=2",  # technology missing
        "/v1/claim?provider_id=abc&cell=2&technology=3",  # non-integer
        "/v1/claim?provider_id=1&cell=2&technology=3&state=NOWHERE",
        "/v1/top?k=abc",
        "/v1/top?k=-1",
        "/v1/top?k=999999",
        "/v1/provider/abc/summary",
        "/v1/state/NOWHERE/summary",
    ],
)
def test_get_failure_modes_return_400_json(served, path):
    server, _service = served
    status, doc = _json(server, "GET", path)
    assert status == 400 and "error" in doc


def test_unknown_routes_return_404_json(served):
    server, _service = served
    for method, path in (
        ("GET", "/nope"),
        ("GET", "/v1/score"),
        ("POST", "/v1/claim"),
        ("POST", "/nope"),
    ):
        status, doc = _json(server, method, path)
        assert status == 404 and "error" in doc, f"{method} {path}"


def test_unknown_claim_without_state_returns_404(served):
    server, _service = served
    status, doc = _json(
        server, "GET", "/v1/claim?provider_id=1&cell=2&technology=3"
    )
    assert status == 404 and "state=XX" in doc["error"]


# -- failure modes, POST /v1/score ------------------------------------------


@pytest.mark.parametrize(
    "body",
    [
        "{not json",  # malformed JSON
        "[1, 2, 3]",  # valid JSON, not an object (used to 500)
        '"claims"',  # JSON scalar
        '{"claims": "nope"}',  # claims not a list
        '{"claims": [42]}',  # entry not an object
        '{"claims": [{"cell": 2, "technology": 3}]}',  # missing field
        '{"claims": [{"provider_id": "abc", "cell": 2, "technology": 3}]}',
        '{"claims": [{"provider_id": 1, "cell": 2, "technology": 3, "state": 7}]}',
        '{"claims": [{"provider_id": 1, "cell": 2, "technology": 3, "state": "ZZ"}]}',
    ],
)
def test_post_failure_modes_return_400_json(served, body):
    server, _service = served
    status, doc = _json(server, "POST", "/v1/score", body=body)
    assert status == 400 and "error" in doc


def test_post_too_many_claims_rejected(served):
    server, _service = served
    claims = [{"provider_id": 1, "cell": 2, "technology": 3}] * 10_001
    status, doc = _json(server, "POST", "/v1/score", body=json.dumps({"claims": claims}))
    assert status == 400 and "at most" in doc["error"]


def test_post_bad_content_length_rejected(served):
    server, _service = served
    for bad in ("abc", "-5"):
        status, doc = _json(
            server,
            "POST",
            "/v1/score",
            body="{}",
            headers={"Content-Length": bad},
        )
        assert status == 400 and "Content-Length" in doc["error"]


def test_post_oversized_body_rejected_without_reading_it(served):
    server, _service = served
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request(
            "POST",
            "/v1/score",
            body="",
            headers={"Content-Length": str(64 * 1024 * 1024)},
        )
        response = conn.getresponse()
        doc = json.loads(response.read())
        assert response.status == 413 and "exceeds" in doc["error"]
        # The body was never read, so the server must refuse to reuse
        # this keep-alive socket (stale bytes would desync the next
        # request on it).
        assert response.getheader("Connection") == "close"
    finally:
        conn.close()


def test_empty_post_body_is_a_clean_400(served):
    server, _service = served
    status, doc = _json(server, "POST", "/v1/score", body="")
    assert status == 400 and "error" in doc


# -- cold path unavailable ---------------------------------------------------


def test_cold_path_unavailable_is_400_not_500(store_only_served, tiny_score_store):
    server, service = store_only_served
    assert service.stats()["cold_path_available"] is False
    status, doc = _json(
        server, "GET", "/v1/claim?provider_id=1&cell=2&technology=3&state=TX"
    )
    assert status == 400 and "cold-path" in doc["error"]
    body = json.dumps(
        {"claims": [{"provider_id": 1, "cell": 2, "technology": 3, "state": "TX"}]}
    )
    status, doc = _json(server, "POST", "/v1/score", body=body)
    assert status == 400 and "cold-path" in doc["error"]
    # Precomputed lookups still work without a live model.
    pid, cell, tech = _known_key(tiny_score_store)
    status, doc = _json(
        server, "GET", f"/v1/claim?provider_id={pid}&cell={cell}&technology={tech}"
    )
    assert status == 200 and doc["precomputed"] is True
