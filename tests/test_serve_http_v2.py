"""v2 HTTP API: resource routes, cursor pagination, limits, models."""

import json

import http.client

import numpy as np
import pytest

from repro.serve import AuditService, ClaimScoreStore
from repro.serve.http import DEFAULT_PAGE_LIMIT, MAX_RESULT_ROWS
from repro.serve.schemas import decode_cursor, encode_cursor


@pytest.fixture(scope="module", params=["monolithic", "sharded"])
def served(request, tiny_model, tiny_score_store, ephemeral_server, tmp_path_factory):
    """A live server with two registered versions (cold path on default).

    Parametrized over the store substrate: the ``sharded`` variant
    serves a store round-tripped through a per-state shard bundle
    (``save_sharded``/``load_sharded``, mmap-backed), so every v2 route
    assertion doubles as a sharded-equivalence check — the bundle must
    reproduce records, ranks, cursors, and etags bitwise.
    """
    model, _split = tiny_model
    store = tiny_score_store
    if request.param == "sharded":
        root = str(tmp_path_factory.mktemp("sharded-store"))
        store.save_sharded(root, shards=4)
        store = ClaimScoreStore.load_sharded(root)
    service = AuditService.from_model(model, store=store)
    flipped = ClaimScoreStore(store.claims, -store.margin)
    service.add_version("flipped", flipped)
    with ephemeral_server(service) as server:
        yield server, service
    service.close()


def _json(server, method, path, body=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _known_key(store, nth=0):
    return store.claims.key_at(int(store.sus_order[nth]))


# -- GET /v2/claims/{...} -----------------------------------------------------


def test_v2_claim_lookup(served, tiny_score_store):
    server, _service = served
    pid, cell, tech = _known_key(tiny_score_store)
    status, doc = _json(server, "GET", f"/v2/claims/{pid}/{cell}/{tech}")
    assert status == 200
    assert doc["model_version"] == "default"
    assert doc["record"] == tiny_score_store.record(int(tiny_score_store.sus_order[0]))


def test_v2_claim_404_and_bad_path(served):
    server, _service = served
    status, doc = _json(server, "GET", "/v2/claims/-1/2/3")
    assert status == 404 and "state=XX" in doc["error"]
    status, doc = _json(server, "GET", "/v2/claims/abc/2/3")
    assert status == 400 and "provider_id" in doc["error"]


def test_v2_claim_cold_path(served, tiny_score_store):
    server, service = served
    pid, cell, _tech = _known_key(tiny_score_store)
    missing = next(
        t
        for t in (10, 40, 50, 70, 71)
        if tiny_score_store.positions(
            np.array([pid]), np.array([cell], dtype=np.uint64), np.array([t])
        )[0]
        < 0
    )
    status, doc = _json(
        server, "GET", f"/v2/claims/{pid}/{cell}/{missing}?state=TX"
    )
    assert status == 200
    assert doc["record"]["precomputed"] is False
    assert doc["record"]["rank"] is None


# -- GET /v2/claims (pagination) ---------------------------------------------


def test_v2_list_first_page_defaults(served, tiny_score_store):
    server, _service = served
    status, doc = _json(server, "GET", "/v2/claims")
    assert status == 200
    assert doc["model_version"] == "default"
    assert doc["total"] == len(tiny_score_store)
    assert len(doc["items"]) == min(DEFAULT_PAGE_LIMIT, len(tiny_score_store))
    ranks = [item["rank"] for item in doc["items"]]
    assert ranks == list(range(len(ranks)))
    cursor = decode_cursor(doc["next_cursor"])
    assert cursor.version == "default" and cursor.rank == len(ranks)


def test_v2_full_walk_equals_suspicion_order(served, tiny_score_store):
    """Concatenated pages reproduce sus_order exactly, no gaps or repeats."""
    server, _service = served
    seen = []
    path = "/v2/claims?limit=997"
    while True:
        status, doc = _json(server, "GET", path)
        assert status == 200
        seen.extend(item["rank"] for item in doc["items"])
        if doc["next_cursor"] is None:
            break
        path = f"/v2/claims?limit=997&cursor={doc['next_cursor']}"
    assert seen == list(range(len(tiny_score_store)))


def test_v2_filtered_walk_matches_store(served, tiny_score_store):
    server, service = served
    store = tiny_score_store
    pid = int(store.claims.provider_id[int(store.sus_order[0])])
    rows_expected = [
        int(r)
        for r in store.sus_order[
            (store.claims.provider_id == pid)[store.sus_order]
        ]
    ]
    got = []
    path = f"/v2/claims?provider_id={pid}&limit=7"
    while True:
        status, doc = _json(server, "GET", path)
        assert status == 200
        assert doc["total"] == len(rows_expected)
        got.extend(item["rank"] for item in doc["items"])
        if doc["next_cursor"] is None:
            break
        path = f"/v2/claims?provider_id={pid}&limit=7&cursor={doc['next_cursor']}"
    assert got == [int(store.sus_rank[r]) for r in rows_expected]


def test_v2_walk_records_match_monolithic_store(served, tiny_score_store):
    """Element-for-element: every record served down the cursor walk —
    on both store substrates — equals the monolithic store's record for
    the same suspicion rank.  This is the serving-layer face of the
    sharded == monolithic equivalence contract."""
    server, _service = served
    items = []
    path = "/v2/claims?limit=1009"
    while True:
        status, doc = _json(server, "GET", path)
        assert status == 200
        items.extend(doc["items"])
        if doc["next_cursor"] is None:
            break
        path = f"/v2/claims?limit=1009&cursor={doc['next_cursor']}"
    store = tiny_score_store
    assert len(items) == len(store)
    expected = store.records(store.sus_order)
    assert items == expected


@pytest.mark.parametrize(
    "path,fragment",
    [
        ("/v2/claims?limit=0", "limit must be in"),
        (f"/v2/claims?limit={MAX_RESULT_ROWS + 1}", "limit must be in"),
        ("/v2/claims?limit=abc", "must be an integer"),
        ("/v2/claims?cursor=!!!", "page token"),
        ("/v2/claims?state=NOWHERE", "unknown state"),
        ("/v2/claims?state=TX&state=CA", "given 2 times"),
        ("/v2/claims/1/2/3?state=TX&state=CA", "given 2 times"),
    ],
)
def test_v2_list_failure_modes(served, path, fragment):
    server, _service = served
    status, doc = _json(server, "GET", path)
    assert status == 400 and fragment in doc["error"]


def test_v2_cursor_version_and_filter_pinning(served, tiny_score_store):
    server, _service = served
    _status, doc = _json(server, "GET", "/v2/claims?limit=2")
    cursor = doc["next_cursor"]
    # Same cursor, different filters: refused.
    status, doc = _json(server, "GET", f"/v2/claims?limit=2&technology=50&cursor={cursor}")
    assert status == 400 and "does not match the request filters" in doc["error"]
    # A cursor minted for another model version: refused with the names.
    c = decode_cursor(cursor)
    assert c.etag == tiny_score_store.etag
    foreign = encode_cursor("flipped", c.rank, c.fingerprint, c.etag)
    status, doc = _json(server, "GET", f"/v2/claims?limit=2&cursor={foreign}")
    assert status == 400 and "'flipped'" in doc["error"]
    # Same version name but a different store build (etag): refused.
    stale = encode_cursor(c.version, c.rank, c.fingerprint, "deadbeef")
    status, doc = _json(server, "GET", f"/v2/claims?limit=2&cursor={stale}")
    assert status == 400 and "different build" in doc["error"]


# -- POST /v2/claims:batchScore ----------------------------------------------


def test_v2_batch_matches_bulk_path(served, tiny_score_store):
    server, service = served
    store = tiny_score_store
    rows = np.linspace(0, len(store) - 1, 32).astype(int)
    claims = store.claims
    body = json.dumps(
        {
            "claims": [
                {
                    "provider_id": int(claims.provider_id[r]),
                    "cell": int(claims.cell[r]),
                    "technology": int(claims.technology[r]),
                }
                for r in rows
            ]
            + [{"provider_id": -1, "cell": 2, "technology": 3}]
        }
    )
    status, doc = _json(server, "POST", "/v2/claims:batchScore", body=body)
    assert status == 200
    assert doc["model_version"] == "default"
    expected = service.score_claims(
        claims.provider_id[rows], claims.cell[rows], claims.technology[rows]
    ) + [None]
    assert doc["results"] == expected


def test_v2_batch_failure_modes(served):
    server, _service = served
    cases = [
        ("[1]", 'body must be {"claims"'),
        ('{"claims": [42]}', "claims[0] must be a JSON object"),
        (
            '{"claims": [{"provider_id": "x", "cell": 2, "technology": 3}]}',
            "claims[0].provider_id must be an integer",
        ),
        (
            '{"claims": [{"provider_id": 1, "cell": 2, "technology": 3, "state": 9}]}',
            "claims[0].state",
        ),
    ]
    for body, fragment in cases:
        status, doc = _json(server, "POST", "/v2/claims:batchScore", body=body)
        assert status == 400 and fragment in doc["error"], body


def test_out_of_range_keys_are_400_never_500(served):
    """Keys overflowing the columnar dtypes must fail as 400s on every
    scoring endpoint — not as OverflowError 500s in the batch scorer."""
    server, _service = served
    huge = 10**20
    for method, path, body in (
        ("GET", "/v2/claims/1/-5/50", None),
        ("GET", f"/v2/claims/{huge}/2/50", None),
        ("GET", "/v1/claim?provider_id=1&cell=-5&technology=50", None),
        ("GET", f"/v2/providers/{huge}", None),
        ("GET", f"/v1/top?provider_id={huge}", None),
        (
            "POST",
            "/v2/claims:batchScore",
            json.dumps(
                {"claims": [{"provider_id": 1, "cell": -5, "technology": 50}]}
            ),
        ),
        (
            "POST",
            "/v1/score",
            json.dumps(
                {"claims": [{"provider_id": 1, "cell": -5, "technology": 50}]}
            ),
        ),
    ):
        status, doc = _json(server, method, path, body=body)
        assert status == 400 and "error" in doc, (method, path, status, doc)


def test_v2_batch_enforces_row_cap(served):
    server, _service = served
    claims = [{"provider_id": 1, "cell": 2, "technology": 3}] * (
        MAX_RESULT_ROWS + 1
    )
    status, doc = _json(
        server,
        "POST",
        "/v2/claims:batchScore",
        body=json.dumps({"claims": claims}),
    )
    assert status == 400 and f"at most {MAX_RESULT_ROWS}" in doc["error"]


# -- summaries, models, healthz ----------------------------------------------


def test_v2_provider_and_state(served, tiny_score_store):
    server, service = served
    pid, _cell, _tech = _known_key(tiny_score_store)
    status, doc = _json(server, "GET", f"/v2/providers/{pid}")
    assert status == 200
    assert doc["model_version"] == "default"
    assert doc["n_claims"] == service.provider_summary(pid)["n_claims"]
    state = doc["top_claims"][0]["state"]
    status, doc = _json(server, "GET", f"/v2/states/{state}")
    assert status == 200 and doc["state"] == state
    status, doc = _json(server, "GET", "/v2/providers/abc")
    assert status == 400
    status, doc = _json(server, "GET", "/v2/states/NOWHERE")
    assert status == 400 and "unknown state" in doc["error"]


def test_v2_models_and_activate(served):
    server, _service = served
    status, doc = _json(server, "GET", "/v2/models")
    assert status == 200
    names = {v["name"] for v in doc["versions"]}
    assert names == {"default", "flipped"}
    assert doc["default"] == "default"
    try:
        status, doc = _json(server, "POST", "/v2/models/flipped:activate")
        assert status == 200
        assert doc == {"default": "flipped", "previous": "default"}
        status, doc = _json(server, "GET", "/v2/models")
        assert doc["default"] == "flipped"
        status, doc = _json(server, "POST", "/v2/models/missing:activate")
        assert status == 404 and "missing" in doc["error"]
    finally:
        _json(server, "POST", "/v2/models/default:activate")


# -- pre-encoded JSON fast path ----------------------------------------------


def test_record_json_matches_json_dumps(served, tiny_score_store):
    """Cached fragments are byte-identical to json.dumps of the record."""
    store = tiny_score_store
    rows = [0, 1, len(store) - 1]
    for row in rows:
        assert store.record_json(row) == json.dumps(store.record(row)).encode(
            "utf-8"
        )
        # Second call returns the cached object, not a re-encode.
        assert store.record_json(row) is store.record_json(row)
    assert store.records_json(np.array(rows)) == [
        store.record_json(r) for r in rows
    ]


def test_page_envelope_json_matches_json_dumps(served, tiny_score_store):
    """The spliced envelope parses and re-encodes to the same bytes as
    building the dict and json.dumps-ing it — the v2 wire contract the
    fast path must never drift from."""
    from repro.serve.http import page_envelope_json

    store = tiny_score_store
    rows = store.sus_order[:5]
    for next_cursor in ("abc123", None):
        body = page_envelope_json(
            store.records_json(rows), next_cursor, len(store), "default"
        )
        expected = json.dumps(
            {
                "items": store.records(rows),
                "next_cursor": next_cursor,
                "total": len(store),
                "model_version": "default",
            }
        ).encode("utf-8")
        assert body == expected


def test_v2_list_page_bytes_equal_dict_encoding(served, tiny_score_store):
    """The served page body (spliced fragments) is exactly what encoding
    the equivalent response dict would produce."""
    server, _service = served
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", "/v2/claims?limit=4")
        response = conn.getresponse()
        raw = response.read()
    finally:
        conn.close()
    assert raw == json.dumps(json.loads(raw)).encode("utf-8")
    doc = json.loads(raw)
    assert doc["items"] == tiny_score_store.records(
        tiny_score_store.sus_order[:4]
    )


def test_v2_request_counters_attributed_to_version(served):
    server, service = served
    before = service.registry.get("default").requests
    _json(server, "GET", "/v2/claims?limit=1")
    _json(server, "GET", "/v2/claims?limit=1")
    assert service.registry.get("default").requests == before + 2
