"""ModelRegistry: registration, resolution, atomic hot-swap, stats."""

import threading

import numpy as np
import pytest

from repro.serve import ClaimScoreStore, ModelRegistry
from repro.serve.registry import state_index


@pytest.fixture()
def stores(tiny_score_store):
    """Two stores over the same claims with distinguishable margins."""
    flipped = ClaimScoreStore(tiny_score_store.claims, -tiny_score_store.margin)
    return tiny_score_store, flipped


@pytest.fixture()
def registry(stores):
    reg = ModelRegistry(max_delay_s=0.0)
    reg.add("a", stores[0])
    reg.add("b", stores[1])
    yield reg
    reg.close()


def test_first_version_is_default(registry, stores):
    assert registry.default_name == "a"
    assert registry.default.store is stores[0]
    assert registry.names() == ["a", "b"]
    assert "a" in registry and "missing" not in registry
    assert len(registry) == 2


def test_resolution_and_unknown_names(registry):
    assert registry.resolve(None).name == "a"
    assert registry.resolve("b").name == "b"
    with pytest.raises(KeyError, match="unknown model version"):
        registry.get("missing")
    with pytest.raises(KeyError, match="unknown model version"):
        registry.activate("missing")


def test_duplicate_and_invalid_names(registry, stores):
    with pytest.raises(ValueError, match="already registered"):
        registry.add("a", stores[0])
    with pytest.raises(ValueError, match="invalid version name"):
        registry.add("bad/name", stores[0])
    with pytest.raises(ValueError, match="invalid version name"):
        registry.add("", stores[0])


def test_activate_swaps_default(registry, stores):
    assert registry.activate("b").store is stores[1]
    assert registry.default_name == "b"
    assert registry.default.store is stores[1]
    registry.activate("a")
    assert registry.default.store is stores[0]


def test_add_with_default_flag(stores):
    reg = ModelRegistry(max_delay_s=0.0)
    reg.add("a", stores[0])
    reg.add("b", stores[1], default=True)
    assert reg.default_name == "b"
    reg.close()


def test_empty_registry_has_no_default():
    reg = ModelRegistry()
    with pytest.raises(RuntimeError, match="none registered"):
        reg.default


def test_first_version_added_without_default_names_the_fix(stores):
    """default=False on the first add is a valid staging state; the
    error must say activate(), not claim the registry is empty."""
    reg = ModelRegistry(max_delay_s=0.0)
    reg.add("staged", stores[0], default=False)
    with pytest.raises(RuntimeError, match="call activate"):
        reg.default
    reg.activate("staged")
    assert reg.default_name == "staged"
    reg.close()


def test_describe_and_request_counters(registry):
    registry.default.count_request()
    registry.default.count_request()
    doc = registry.describe()
    assert doc["default"] == "a"
    by_name = {v["name"]: v for v in doc["versions"]}
    assert by_name["a"]["default"] is True and by_name["b"]["default"] is False
    assert by_name["a"]["requests"] == 2 and by_name["b"]["requests"] == 0
    assert by_name["a"]["n_claims"] == len(registry.get("a").store)
    assert by_name["a"]["cold_path_available"] is False
    assert "batcher" in by_name["a"]


def test_versions_score_independently(registry, stores):
    """Each version's batcher + cache is its own — results never mix."""
    store_a, store_b = stores
    row = int(store_a.sus_order[0])
    key = store_a.claims.key_at(row)
    rec_a = registry.get("a").score_claim(*key)
    rec_b = registry.get("b").score_claim(*key)
    assert rec_a["margin"] == float(store_a.margin[row])
    assert rec_b["margin"] == float(store_b.margin[row])
    assert rec_a["margin"] == -rec_b["margin"]


def test_score_keys_matches_score_claims(registry, stores):
    from repro.serve.schemas import ClaimKey

    store = stores[0]
    version = registry.get("a")
    rows = np.arange(min(64, len(store)))
    claims = store.claims
    keys = [ClaimKey(*claims.key_at(int(r))) for r in rows]
    via_keys, degraded = version.score_keys(keys)
    via_arrays = version.score_claims(
        claims.provider_id[rows], claims.cell[rows], claims.technology[rows]
    )
    assert via_keys == via_arrays and degraded is False
    # A miss without state comes back as None in position.
    miss = ClaimKey(-1, 0, 10)
    assert version.score_keys([miss, keys[0]]) == ([None, via_keys[0]], False)
    assert version.score_keys([]) == ([], False)


def test_score_keys_invalid_state_strands_no_batchmates(tiny_model, tiny_score_store):
    """A bad cold key must fail before any batchmate is enqueued."""
    from repro.serve import AuditService
    from repro.serve.schemas import ClaimKey

    model, _ = tiny_model
    service = AuditService.from_model(
        model, store=tiny_score_store, max_delay_s=0.0
    )
    version = service.registry.default
    keys = [
        ClaimKey(-5, 1, 10, state="TX"),   # valid cold key
        ClaimKey(-6, 1, 10, state="ZZ"),   # invalid state
    ]
    with pytest.raises(ValueError, match="unknown state"):
        version.score_keys(keys)
    # The valid key was never submitted: nothing is left in the queue.
    assert version.batcher.flush() == 0
    # An invalid state fails even when its key HITS the store — the
    # typo'd cold-scoring fallback must not pass silently.
    hit = ClaimKey(*tiny_score_store.claims.key_at(0), state="ZZ")
    with pytest.raises(ValueError, match="unknown state"):
        version.score_keys([hit])
    service.close()


def test_load_version_from_artifacts(tmp_path, tiny_model, tiny_score_store):
    from repro.serve import AuditService

    model, _ = tiny_model
    service = AuditService.from_model(model, store=tiny_score_store)
    bundle = str(tmp_path / "bundle")
    service.save(bundle)
    service.close()

    reg = ModelRegistry(max_delay_s=0.0)
    version = reg.load("2024-06", bundle)
    assert reg.default_name == "2024-06"
    assert np.array_equal(version.store.margin, tiny_score_store.margin)
    assert version.cold_path_available is False  # no live builder passed
    reg.close()


def test_concurrent_snapshots_never_half_swapped(registry, stores):
    """Readers racing activate() always see one coherent version object."""
    by_store = {id(stores[0]): "a", id(stores[1]): "b"}
    stop = threading.Event()
    violations = []

    def reader():
        while not stop.is_set():
            version = registry.default  # one atomic snapshot
            # The (name, store) pair inside the snapshot must be coherent.
            if by_store.get(id(version.store)) != version.name:
                violations.append((version.name, id(version.store)))

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    for i in range(200):
        registry.activate("b" if i % 2 == 0 else "a")
    stop.set()
    for t in threads:
        t.join()
    assert not violations


def test_state_index_helper():
    assert state_index("tx") == state_index("TX")
    with pytest.raises(ValueError, match="unknown state"):
        state_index("ZZ")
