"""Overload safety: admission, deadlines, breaker, fault injection.

The contract under test, bottom-up: the admission gate is *bounded*
(running and queued never exceed their capacities — pinned by a
hypothesis property over racing threads), every shed carries a
``Retry-After`` all the way to the wire, a stalled client body is a 408
(not a captured thread), the breaker fails cold scoring fast instead of
hammering a broken path, and ``/readyz`` flips during maintenance
windows while ``/healthz`` stays observable throughout.
"""

import http.client
import json
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve import (
    AdmissionController,
    AuditService,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ModelRegistry,
    ResilienceConfig,
    ServiceOverloaded,
    chaos_plan,
    chaos_plan_names,
)
from repro.serve.resilience import (
    SEAM_COLD_SCORE,
    SEAM_STORE_READ,
    merge_deadlines,
)


class FakeClock:
    """A hand-cranked monotonic clock for deadline/breaker unit tests."""

    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# -- deadlines ----------------------------------------------------------------


def test_deadline_budget_and_expiry():
    clock = FakeClock()
    deadline = Deadline.after(1.0, clock=clock)
    assert deadline.remaining() == 1.0 and not deadline.expired
    deadline.require()  # no-op while budget remains
    clock.advance(0.6)
    assert abs(deadline.remaining() - 0.4) < 1e-9
    clock.advance(0.4)
    assert deadline.expired and deadline.remaining() == 0.0
    with pytest.raises(DeadlineExceeded, match="batch deadline exceeded"):
        deadline.require("batch")


def test_merge_deadlines_keeps_the_laxest():
    clock = FakeClock()
    tight = Deadline.after(0.1, clock=clock)
    lax = Deadline.after(5.0, clock=clock)
    # Coalesced batch slots serve while ANY waiter still has budget.
    assert merge_deadlines(tight, lax) is lax
    assert merge_deadlines(lax, tight) is lax
    # None means "no limit", which is the laxest of all.
    assert merge_deadlines(tight, None) is None
    assert merge_deadlines(None, None) is None


# -- admission control --------------------------------------------------------


def test_admission_admits_and_releases():
    gate = AdmissionController(max_concurrent=2, max_queue=4)
    with gate.admit("v") as _first, gate.admit("v") as _second:
        depth = gate.depth("v")
        assert depth["running"] == 2 and depth["queued"] == 0
    depth = gate.depth("v")
    assert depth["running"] == 0 and depth["admitted"] == 2
    assert depth["peak_running"] == 2
    # Release is idempotent: a double release must not free a phantom slot.
    ticket = gate.admit("v")
    ticket.release()
    ticket.release()
    assert gate.depth("v")["running"] == 0


def test_admission_sheds_when_queue_is_full():
    gate = AdmissionController(max_concurrent=1, max_queue=0, retry_after_s=3.0)
    ticket = gate.admit("v")
    with pytest.raises(ServiceOverloaded, match="overloaded") as err:
        gate.admit("v")
    assert err.value.status == 429 and err.value.retry_after_s == 3.0
    assert gate.depth("v")["shed_queue_full"] == 1
    ticket.release()
    gate.admit("v").release()  # the freed slot is usable again


def test_admission_sheds_expired_deadline_instead_of_queueing():
    gate = AdmissionController(max_concurrent=1, max_queue=4, max_wait_s=5.0)
    ticket = gate.admit("v")
    clock = FakeClock()
    spent = Deadline.after(0.0, clock=clock)
    start = time.monotonic()
    with pytest.raises(ServiceOverloaded, match="deadline expired while queued"):
        gate.admit("v", deadline=spent)
    # Shed at the buzzer, without burning the 5s max_wait_s.
    assert time.monotonic() - start < 1.0
    assert gate.depth("v")["shed_deadline"] == 1
    ticket.release()


def test_admission_queued_request_gets_the_freed_slot():
    gate = AdmissionController(max_concurrent=1, max_queue=1, max_wait_s=5.0)
    ticket = gate.admit("v")
    admitted = threading.Event()

    def waiter():
        gate.admit("v").release()
        admitted.set()

    thread = threading.Thread(target=waiter)
    thread.start()
    deadline = time.monotonic() + 2.0
    while gate.depth("v")["queued"] == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    assert gate.depth("v")["queued"] == 1
    ticket.release()
    assert admitted.wait(timeout=2.0)
    thread.join()
    depth = gate.depth("v")
    assert depth["admitted"] == 2 and depth["peak_queued"] == 1


def test_admission_gates_are_per_version():
    gate = AdmissionController(max_concurrent=1, max_queue=0)
    ticket = gate.admit("a")
    # Version "b" has its own bounded queue: "a" being saturated is
    # irrelevant to it.
    gate.admit("b").release()
    described = gate.describe()
    assert described["max_concurrent"] == 1
    assert set(described["versions"]) == {"a", "b"}
    ticket.release()


@settings(max_examples=10, deadline=None)
@given(
    max_concurrent=st.integers(min_value=1, max_value=4),
    max_queue=st.integers(min_value=0, max_value=4),
    n_threads=st.integers(min_value=1, max_value=12),
)
def test_admission_bounds_hold_under_races(max_concurrent, max_queue, n_threads):
    """The property the whole design rests on: whatever the thread
    interleaving, the gate never runs more than ``max_concurrent`` nor
    queues more than ``max_queue``, every call resolves to exactly one of
    admitted/shed, and every shed names a positive ``Retry-After``."""
    gate = AdmissionController(
        max_concurrent=max_concurrent, max_queue=max_queue, max_wait_s=0.2
    )
    barrier = threading.Barrier(n_threads)
    sheds = []
    lock = threading.Lock()

    def worker():
        barrier.wait()  # maximize contention: everyone arrives at once
        try:
            ticket = gate.admit("v")
        except ServiceOverloaded as exc:
            with lock:
                sheds.append(exc.retry_after_s)
            return
        time.sleep(0.002)
        ticket.release()

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    depth = gate.depth("v")
    assert depth["running"] == 0 and depth["queued"] == 0
    assert depth["peak_running"] <= max_concurrent
    assert depth["peak_queued"] <= max_queue
    shed = depth["shed_queue_full"] + depth["shed_deadline"]
    assert depth["admitted"] + shed == n_threads
    assert len(sheds) == shed
    assert all(retry_after > 0 for retry_after in sheds)


# -- circuit breaker ----------------------------------------------------------


def test_breaker_trips_after_threshold_and_recovers():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, reset_after_s=10.0, clock=clock)
    assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.allow()  # still under the threshold
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN and not breaker.allow()
    clock.advance(9.9)
    assert not breaker.allow()  # window not yet over
    clock.advance(0.2)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()  # exactly one probe...
    assert not breaker.allow()  # ...everyone else keeps failing fast
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()


def test_breaker_failed_probe_reopens_full_window():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_after_s=5.0, clock=clock)
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_failure()  # the probe failed
    assert breaker.state == CircuitBreaker.OPEN and not breaker.allow()
    clock.advance(4.9)
    assert not breaker.allow()  # a fresh full window, not the stale one
    assert breaker.describe()["trips"] == 2


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    # Non-consecutive failures never trip.
    assert breaker.state == CircuitBreaker.CLOSED


# -- fault injection ----------------------------------------------------------


def test_fault_spec_schedule_arithmetic():
    spec = FaultSpec(seam=SEAM_COLD_SCORE, every=3, first=2)
    assert [i for i in range(12) if spec.fires_on(i)] == [2, 5, 8, 11]
    with pytest.raises(ValueError, match="unknown fault seam"):
        FaultSpec(seam="nonsense")
    with pytest.raises(ValueError, match="delay.*error"):
        FaultSpec(seam=SEAM_COLD_SCORE, kind="explode")
    with pytest.raises(ValueError, match="every"):
        FaultSpec(seam=SEAM_COLD_SCORE, every=0)


def test_fault_plan_fires_deterministically():
    plan = FaultPlan(
        (FaultSpec(seam=SEAM_COLD_SCORE, every=2, first=1, message="boom"),)
    )
    outcomes = []
    for _ in range(6):
        try:
            plan.fire(SEAM_COLD_SCORE)
            outcomes.append("ok")
        except InjectedFault as exc:
            outcomes.append("fault")
            assert "boom" in str(exc) and "seam=cold_score" in str(exc)
    assert outcomes == ["ok", "fault", "ok", "fault", "ok", "fault"]
    counts = plan.counts()
    assert counts[SEAM_COLD_SCORE] == {"calls": 6, "fired": 3}
    assert counts[SEAM_STORE_READ] == {"calls": 0, "fired": 0}
    with pytest.raises(ValueError, match="unknown fault seam"):
        plan.fire("nonsense")


def test_chaos_plan_factories():
    names = chaos_plan_names()
    assert "cold_flaky" in names and "flush_stall" in names
    # Factories, not shared instances: plans carry call counters.
    assert chaos_plan("cold_flaky") is not chaos_plan("cold_flaky")
    with pytest.raises(KeyError, match="unknown chaos plan"):
        chaos_plan("nonsense")


def test_resilience_config_builds_admission():
    config = ResilienceConfig(max_concurrent=3, max_queue=7, retry_after_s=2.5)
    gate = config.build_admission()
    assert gate.max_concurrent == 3 and gate.max_queue == 7
    assert gate.retry_after_s == 2.5
    assert ResilienceConfig(admission_enabled=False).build_admission() is None


# -- over the wire ------------------------------------------------------------


def _raw(server, method, path, body=None, headers=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        payload = response.read()
        return response.status, dict(response.getheaders()), json.loads(payload)
    finally:
        conn.close()


def test_shed_response_is_429_with_retry_after(tiny_score_store, ephemeral_server):
    """With one slot, no queue, and 0.3s store reads, a second concurrent
    request must come back 429 + Retry-After while the first still wins."""
    registry = ModelRegistry(max_delay_s=0.0)
    registry.add(
        "default",
        tiny_score_store,
        fault_plan=FaultPlan(
            (FaultSpec(seam=SEAM_STORE_READ, kind="delay", delay_s=0.3, every=1),),
            name="slow-reads",
        ),
    )
    service = AuditService.from_registry(registry)
    config = ResilienceConfig(
        max_concurrent=1, max_queue=0, max_queue_wait_s=0.05, retry_after_s=2.0
    )
    pid, cell, tech = tiny_score_store.claims.key_at(0)
    path = f"/v2/claims/{pid}/{cell}/{tech}"
    slow_result = {}

    with ephemeral_server(service, resilience=config) as server:

        def occupant():
            slow_result["response"] = _raw(server, "GET", path)

        thread = threading.Thread(target=occupant)
        thread.start()
        time.sleep(0.1)  # let the occupant take the only slot
        status, headers, doc = _raw(server, "GET", path)
        thread.join()
    service.close()

    assert status == 429 and "overloaded" in doc["error"]
    assert headers.get("Retry-After") == "2"
    # Meta routes bypass admission: the saturated gate stayed observable.
    assert slow_result["response"][0] == 200


def test_retry_after_is_integer_delta_seconds(tiny_score_store, ephemeral_server):
    """RFC 9110 §10.2.3 allows only integer delta-seconds in Retry-After.

    A fractional ``retry_after_s`` must be *ceiled* on the wire: 2.5
    becomes ``"3"``, never banker's-rounded down to ``"2"`` (which would
    invite the client back inside the shed window)."""
    service = AuditService(tiny_score_store)
    config = ResilienceConfig(max_concurrent=1, max_queue=0, retry_after_s=2.5)
    pid, cell, tech = tiny_score_store.claims.key_at(0)
    with ephemeral_server(service, resilience=config) as server:
        gate = server.admission
        ticket = gate.admit(service.registry.default_name)
        try:
            status, headers, _doc = _raw(
                server, "GET", f"/v2/claims/{pid}/{cell}/{tech}"
            )
        finally:
            ticket.release()
    service.close()
    assert status == 429
    assert headers.get("Retry-After") == "3"


def test_healthz_bypasses_a_saturated_gate(tiny_score_store, ephemeral_server):
    service = AuditService(tiny_score_store)
    config = ResilienceConfig(max_concurrent=1, max_queue=0)
    with ephemeral_server(service, resilience=config) as server:
        gate = server.admission
        ticket = gate.admit(service.registry.default_name)
        try:
            status, _headers, doc = _raw(server, "GET", "/healthz")
        finally:
            ticket.release()
    service.close()
    assert status == 200 and doc["status"] == "ok"
    assert doc["ready"] is True
    assert doc["admission"]["versions"]["default"]["running"] == 1


def test_readyz_flips_during_maintenance(tiny_score_store, ephemeral_server):
    service = AuditService(tiny_score_store)
    with ephemeral_server(service) as server:
        status, _headers, doc = _raw(server, "GET", "/readyz")
        assert status == 200 and doc == {"ready": True, "reason": None}
        with service.registry.maintenance("rebuilding score store"):
            status, headers, doc = _raw(server, "GET", "/readyz")
            assert status == 503
            assert headers.get("Retry-After") is not None
            assert "rebuilding score store" in doc["error"]
            # /healthz stays a 200 throughout — an operator must be able
            # to observe a not-ready server — but reports ready: false.
            status, _h, health = _raw(server, "GET", "/healthz")
            assert status == 200 and health["ready"] is False
        status, _headers, doc = _raw(server, "GET", "/readyz")
        assert status == 200 and doc["ready"] is True
    service.close()


def test_stalled_request_body_gets_408(tiny_score_store, ephemeral_server):
    """A client that sends headers but stalls the body must get a 408
    JSON error within the socket timeout — never capture a thread."""
    service = AuditService(tiny_score_store)
    config = ResilienceConfig(socket_timeout_s=0.2)
    with ephemeral_server(service, resilience=config) as server:
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=5)
        try:
            start = time.monotonic()
            conn.putrequest("POST", "/v2/claims:batchScore")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", "100")
            conn.endheaders()  # ...and never send the promised body
            response = conn.getresponse()
            doc = json.loads(response.read())
            elapsed = time.monotonic() - start
        finally:
            conn.close()
    service.close()
    assert response.status == 408
    assert "timed out" in doc["error"]
    assert response.getheader("Retry-After") is not None
    assert elapsed < 3.0


def test_expired_client_deadline_is_shed_not_scored(
    tiny_score_store, ephemeral_server
):
    """X-Request-Deadline-Ms: 1 arrives already (or immediately) expired;
    the server must shed or drop it — 429 or 503, never a 500."""
    service = AuditService(tiny_score_store)
    pid, cell, tech = tiny_score_store.claims.key_at(0)
    with ephemeral_server(service) as server:
        status, headers, doc = _raw(
            server,
            "GET",
            f"/v2/claims/{pid}/{cell}/{tech}",
            headers={"X-Request-Deadline-Ms": "1"},
        )
        bad_status, _headers, bad_doc = _raw(
            server,
            "GET",
            f"/v2/claims/{pid}/{cell}/{tech}",
            headers={"X-Request-Deadline-Ms": "zero"},
        )
    service.close()
    assert status in (200, 429, 503)  # a fast box may still beat 1ms
    if status != 200:
        assert headers.get("Retry-After") is not None
    assert bad_status == 400 and "X-Request-Deadline-Ms" in bad_doc["error"]
