"""Declarative router: pattern matching and typed query-param parsing."""

import pytest

from repro.serve.router import (
    BadRequest,
    NotFound,
    PayloadTooLarge,
    QueryParam,
    Router,
    parse_query,
)


def _handler(ctx):  # pragma: no cover - never invoked
    return ctx


@pytest.fixture()
def router():
    r = Router()
    r.add("GET", "/healthz", _handler, name="health")
    r.add("GET", "/v2/claims/{provider_id}/{cell}/{technology}", _handler)
    r.add("GET", "/v2/claims", _handler)
    r.add("POST", "/v2/claims:batchScore", _handler)
    r.add("POST", "/v2/models/{name}:activate", _handler)
    r.add("GET", "/v1/provider/{provider_id}/summary", _handler)
    return r


# -- matching -----------------------------------------------------------------


def test_literal_and_captures(router):
    route, params = router.match("GET", "/healthz")
    assert route.name == "health" and params == {}
    route, params = router.match("GET", "/v2/claims/17/123456/50")
    assert params == {"provider_id": "17", "cell": "123456", "technology": "50"}
    assert router.match("GET", "/v2/claims") is not None


def test_custom_method_suffix_matches_literally(router):
    route, params = router.match("POST", "/v2/claims:batchScore")
    assert params == {} and route.pattern.endswith(":batchScore")
    # The capture stops at the literal ":activate" suffix.
    route, params = router.match("POST", "/v2/models/2024-06:activate")
    assert params == {"name": "2024-06"}


def test_method_mismatch_and_unknown_paths(router):
    assert router.match("POST", "/healthz") is None
    assert router.match("GET", "/v2/claims:batchScore") is None
    assert router.match("GET", "/nope") is None
    # Captures never span a slash.
    assert router.match("GET", "/v2/claims/1/2/3/4") is None
    assert router.match("GET", "/v1/provider//summary") is None


def test_trailing_suffix_capture(router):
    route, params = router.match("GET", "/v1/provider/abc/summary")
    assert params == {"provider_id": "abc"}  # typing happens in the handler


def test_path_captures_span_slashes_and_empty():
    """{param:path} reproduces the v1 adapters' prefix/suffix matching."""
    r = Router()
    r.add("GET", "/v1/provider/{provider_id:path}/summary", _handler)
    assert r.match("GET", "/v1/provider//summary")[1] == {"provider_id": ""}
    assert r.match("GET", "/v1/provider/1/2/summary")[1] == {
        "provider_id": "1/2"
    }
    assert r.match("GET", "/v1/provider/7/summary")[1] == {"provider_id": "7"}
    assert r.match("GET", "/v1/provider/7") is None


def test_first_match_wins():
    r = Router()
    r.add("GET", "/a/{x}", _handler, name="first")
    r.add("GET", "/a/literal", _handler, name="second")
    route, _ = r.match("GET", "/a/literal")
    assert route.name == "first"


# -- query parsing ------------------------------------------------------------

_SPEC = (
    QueryParam("k", "int", default=10),
    QueryParam("state"),
    QueryParam("provider_id", "int", required=True),
)


def test_parse_query_types_defaults_required():
    out = parse_query({"provider_id": ["7"], "state": ["TX"]}, _SPEC)
    assert out == {"k": 10, "state": "TX", "provider_id": 7}
    with pytest.raises(BadRequest, match="missing required parameter 'provider_id'"):
        parse_query({}, _SPEC)
    with pytest.raises(BadRequest, match="parameter 'k' must be an integer"):
        parse_query({"k": ["abc"], "provider_id": ["1"]}, _SPEC)


def test_parse_query_rejects_repeated_parameters():
    """?state=TX&state=CA used to silently resolve to TX — now a 400."""
    with pytest.raises(BadRequest, match="'state' was given 2 times"):
        parse_query({"state": ["TX", "CA"], "provider_id": ["1"]}, _SPEC)
    with pytest.raises(BadRequest, match="'provider_id' was given 3 times"):
        parse_query({"provider_id": ["1", "2", "3"]}, _SPEC)


def test_parse_query_ignores_undeclared_parameters():
    out = parse_query({"provider_id": ["1"], "trace": ["a", "b"]}, _SPEC)
    assert "trace" not in out


def test_error_statuses():
    assert BadRequest.status == 400
    assert NotFound.status == 404
    assert PayloadTooLarge.status == 413
