"""Typed wire schemas: validation, canonical encoding, cursor codec."""

import json

import pytest

from repro.serve.schemas import (
    BatchScoreRequest,
    BatchScoreResponse,
    ClaimKey,
    Cursor,
    ErrorBody,
    Page,
    SchemaError,
    ScoreRecord,
    decode_cursor,
    encode_cursor,
    filter_fingerprint,
)


def _precomputed_record(**overrides):
    doc = {
        "provider_id": 100043,
        "cell": 12345,
        "technology": 50,
        "state": "TX",
        "score": 0.93,
        "margin": 2.5,
        "percentile": 99.5,
        "rank": 0,
        "claimed_count": 7,
        "max_download_mbps": 100.0,
        "max_upload_mbps": 20.0,
        "low_latency": True,
        "precomputed": True,
    }
    doc.update(overrides)
    return doc


# -- ClaimKey -----------------------------------------------------------------


def test_claim_key_roundtrip():
    key = ClaimKey.from_dict({"provider_id": 1, "cell": 2, "technology": 3})
    assert key == ClaimKey(1, 2, 3)
    assert key.to_dict() == {"provider_id": 1, "cell": 2, "technology": 3}
    assert key.payload == (1, 2, 3, None)
    cold = ClaimKey.from_dict(
        {"provider_id": 1, "cell": 2, "technology": 3, "state": "TX"}
    )
    assert cold.state == "TX" and cold.to_dict()["state"] == "TX"


@pytest.mark.parametrize(
    "doc",
    [
        "not an object",
        {"cell": 2, "technology": 3},  # provider_id missing
        {"provider_id": "abc", "cell": 2, "technology": 3},
        {"provider_id": 1.5, "cell": 2, "technology": 3},  # float is not int
        {"provider_id": True, "cell": 2, "technology": 3},  # bool is not int
        {"provider_id": 1, "cell": 2, "technology": 3, "state": 7},
    ],
)
def test_claim_key_rejects_malformed(doc):
    with pytest.raises(SchemaError):
        ClaimKey.from_dict(doc)


def test_claim_key_error_names_the_field():
    with pytest.raises(SchemaError, match=r"claims\[3\]\.cell"):
        ClaimKey.from_dict({"provider_id": 1, "technology": 3}, "claims[3]")


# -- ScoreRecord --------------------------------------------------------------


def test_score_record_roundtrip_precomputed():
    doc = _precomputed_record()
    record = ScoreRecord.from_dict(doc)
    assert record.rank == 0 and record.precomputed is True
    assert record.to_dict() == doc
    # Canonical key order matches the v1 wire format exactly.
    assert list(record.to_dict()) == list(doc)


def test_score_record_roundtrip_cold():
    doc = {
        "provider_id": 1,
        "cell": 2,
        "technology": 3,
        "state": "TX",
        "score": 0.5,
        "margin": 0.0,
        "percentile": 50.0,
        "rank": None,
        "precomputed": False,
    }
    record = ScoreRecord.from_dict(doc)
    assert record.rank is None and record.claimed_count is None
    assert record.to_dict() == doc
    assert list(record.to_dict()) == list(doc)


def test_score_record_rejects_malformed():
    with pytest.raises(SchemaError, match="precomputed"):
        ScoreRecord.from_dict(_precomputed_record(precomputed="yes"))
    with pytest.raises(SchemaError, match="score"):
        ScoreRecord.from_dict(_precomputed_record(score="high"))


# -- Page / ErrorBody / batch ------------------------------------------------


def test_page_roundtrip():
    record = ScoreRecord.from_dict(_precomputed_record())
    page = Page(
        items=(record,), next_cursor="abc", total=12, model_version="default"
    )
    doc = json.loads(json.dumps(page.to_dict()))
    assert Page.from_dict(doc) == page
    with pytest.raises(SchemaError, match="items"):
        Page.from_dict({"items": "nope", "total": 0, "model_version": "x"})


def test_error_body_roundtrip():
    body = ErrorBody("boom")
    assert ErrorBody.from_dict(body.to_dict()) == body
    with pytest.raises(SchemaError):
        ErrorBody.from_dict({"error": 5})


def test_batch_request_roundtrip_and_caps():
    request = BatchScoreRequest.from_dict(
        {"claims": [{"provider_id": 1, "cell": 2, "technology": 3}]}
    )
    assert request.claims == (ClaimKey(1, 2, 3),)
    assert BatchScoreRequest.from_dict(request.to_dict()) == request
    with pytest.raises(SchemaError, match="at most 1 claims"):
        BatchScoreRequest.from_dict(
            {"claims": [{}, {}]},
            max_claims=1,
        )
    with pytest.raises(SchemaError, match="claims"):
        BatchScoreRequest.from_dict({"claims": "nope"})


def test_batch_response_roundtrip():
    record = ScoreRecord.from_dict(_precomputed_record())
    response = BatchScoreResponse(results=(record, None), model_version="v1")
    doc = json.loads(json.dumps(response.to_dict()))
    assert BatchScoreResponse.from_dict(doc) == response


# -- cursors ------------------------------------------------------------------


def test_cursor_roundtrip():
    fp = filter_fingerprint(provider_id=7, state_idx=None, technology=50)
    token = encode_cursor("default", 1234, fp, "abc123")
    assert decode_cursor(token) == Cursor("default", 1234, fp, "abc123")
    # The etag defaults empty for callers without a store fingerprint.
    assert decode_cursor(encode_cursor("v", 0, fp)).etag == ""
    # URL-safe, no padding.
    assert "=" not in token and "+" not in token and "/" not in token


def test_filter_fingerprint_drops_absent_filters():
    assert filter_fingerprint(a=None, b=2) == filter_fingerprint(b=2)
    assert filter_fingerprint(b=2) != filter_fingerprint(b=3)


@pytest.mark.parametrize(
    "token",
    ["", "!!!!", "bm90IGpzb24", encode_cursor("v", 0, "f")[:-4] + "AAAA", None, 7],
)
def test_cursor_rejects_garbage(token):
    with pytest.raises(SchemaError):
        decode_cursor(token)


def test_cursor_rejects_negative_rank_and_wrong_schema():
    import base64

    for payload in (
        {"s": 1, "v": "x", "r": -1, "f": ""},
        {"s": 99, "v": "x", "r": 0, "f": ""},
        {"s": 1, "v": 5, "r": 0, "f": ""},
        {"s": 1, "v": "x", "r": True, "f": ""},
        [1, 2, 3],
    ):
        token = (
            base64.urlsafe_b64encode(json.dumps(payload).encode())
            .rstrip(b"=")
            .decode()
        )
        with pytest.raises(SchemaError):
            decode_cursor(token)
