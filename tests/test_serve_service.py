"""AuditService facade + stdlib HTTP API."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.reports import SliceReport
from repro.dataset.observations import LabelSource, Observation
from repro.fcc.providers import TECHNOLOGY_CODES
from repro.fcc.states import STATES
from repro.serve import AuditService, make_server


@pytest.fixture()
def service(tiny_model, tiny_score_store):
    model, _ = tiny_model
    svc = AuditService.from_model(
        model, store=tiny_score_store, max_delay_s=0.0
    )
    yield svc
    svc.close()


def _known_key(store, row=0):
    claims = store.claims
    return (
        int(claims.provider_id[row]),
        int(claims.cell[row]),
        int(claims.technology[row]),
    )


def _missing_key(store):
    """An existing provider+cell with a technology it never filed there."""
    claims = store.claims
    pid, cell, tech = _known_key(store)
    for other in TECHNOLOGY_CODES:
        if other == tech:
            continue
        pos = store.positions(
            np.array([pid]), np.array([cell], dtype=np.uint64), np.array([other])
        )
        if pos[0] < 0:
            return pid, cell, other
    raise AssertionError("no missing technology found")


# -- query facade ------------------------------------------------------------


def test_score_claim_hit(service):
    pid, cell, tech = _known_key(service.store)
    record = service.score_claim(pid, cell, tech)
    assert record["precomputed"] is True
    assert record == service.store.record(0)


def test_score_claim_miss_without_state_is_none(service):
    pid, cell, tech = _missing_key(service.store)
    assert service.score_claim(pid, cell, tech) is None


def test_cold_path_matches_live_model(service, tiny_model):
    model, _ = tiny_model
    pid, cell, tech = _missing_key(service.store)
    state = service.store.record(0)["state"]
    record = service.score_claim(pid, cell, tech, state=state)
    assert record["precomputed"] is False
    assert record["rank"] is None
    obs = Observation(
        provider_id=pid, cell=cell, technology=tech, state=state,
        unserved=0, source=LabelSource.SYNTHETIC,
    )
    assert record["score"] == float(model.predict_proba([obs])[0])
    assert 0.0 <= record["percentile"] <= 100.0


def test_cold_path_requires_builder(tiny_score_store):
    svc = AuditService(tiny_score_store, max_delay_s=0.0)
    pid, cell, tech = _missing_key(tiny_score_store)
    with pytest.raises(RuntimeError, match="cold-path"):
        svc.score_claim(pid, cell, tech, state="TX")
    # Precomputed lookups still work without a classifier.
    known = _known_key(tiny_score_store)
    assert svc.score_claim(*known)["precomputed"] is True
    svc.close()


def test_bad_cold_payload_does_not_poison_the_batch(service):
    """A malformed hypothetical fails its own request; batchmates survive."""
    good_key = _known_key(service.store)
    missing = _missing_key(service.store)
    state = service.store.record(0)["state"]
    futs = [
        service.score_claim_async(*good_key),
        # Unknown provider: vectorization of this payload raises.
        service.score_claim_async(-12345, missing[1], missing[2], state=state),
        service.score_claim_async(*missing, state=state),
    ]
    service.batcher.flush()
    assert futs[0].result(timeout=5) == service.store.record(0)
    with pytest.raises(Exception, match="cold scoring failed"):
        futs[1].result(timeout=5)
    assert futs[2].result(timeout=5)["precomputed"] is False


def test_score_claim_rejects_unknown_state(service):
    pid, cell, tech = _known_key(service.store)
    with pytest.raises(ValueError, match="unknown state"):
        service.score_claim(pid, cell, tech, state="ZZ")


def test_score_claims_bulk_matches_store(service):
    store = service.store
    claims = store.claims
    n = min(2000, len(store))
    rows = np.arange(n)
    results = service.score_claims(
        claims.provider_id[rows], claims.cell[rows], claims.technology[rows]
    )
    assert len(results) == n
    assert all(r is not None for r in results)
    assert [r["rank"] for r in results] == [int(store.sus_rank[r]) for r in rows]
    # Misses come back as None in position.
    mixed = service.score_claims(
        np.array([claims.provider_id[0], -1]),
        np.array([claims.cell[0], claims.cell[0]], dtype=np.uint64),
        np.array([claims.technology[0], claims.technology[0]]),
    )
    assert mixed[0] is not None and mixed[1] is None


def test_single_and_bulk_paths_agree(service):
    store = service.store
    rows = [0, len(store) // 3, len(store) - 1]
    singles = [service.score_claim(*_known_key(store, r)) for r in rows]
    claims = store.claims
    idx = np.array(rows)
    bulk = service.score_claims(
        claims.provider_id[idx], claims.cell[idx], claims.technology[idx]
    )
    assert singles == bulk


def test_top_suspicious_with_state_filter(service):
    store = service.store
    top = service.top_suspicious(k=5)
    assert [r["rank"] for r in top] == list(range(5))
    state = top[0]["state"]
    filtered = service.top_suspicious(k=5, state=state)
    assert all(r["state"] == state for r in filtered)
    assert filtered[0] == top[0]
    with pytest.raises(ValueError):
        service.top_suspicious(k=5, state="not-a-state")


def test_summaries(service):
    store = service.store
    top = store.record(int(store.sus_order[0]))
    psum = service.provider_summary(top["provider_id"])
    assert psum["n_claims"] == int(
        (store.claims.provider_id == top["provider_id"]).sum()
    )
    assert 0.0 <= psum["suspicious_share"] <= 1.0
    assert psum["top_claims"][0] == top
    ssum = service.state_summary(top["state"].lower())  # case-insensitive
    assert ssum["state"] == top["state"]
    assert ssum["n_claims"] > 0
    empty = service.provider_summary(-1)
    assert empty == {"provider_id": -1, "n_claims": 0}


def test_slice_report_reuses_core_reports(service, tiny_model, tiny_dataset):
    _, split = tiny_model
    observations = split.test(tiny_dataset)[:120]
    report = service.slice_report(observations, "held-out sample")
    assert isinstance(report, SliceReport)
    assert report.n == len(observations)
    svc_no_model = AuditService(service.store, max_delay_s=0.0)
    with pytest.raises(RuntimeError, match="from_model"):
        svc_no_model.slice_report(observations, "x")


def test_stats_and_cache(service):
    pid, cell, tech = _known_key(service.store)
    service.score_claim(pid, cell, tech)
    service.score_claim(pid, cell, tech)
    stats = service.stats()
    assert stats["n_claims"] == len(service.store)
    assert stats["cold_path_available"] is True
    assert stats["batcher"]["cache_hits"] >= 1


def test_from_artifacts_roundtrip(tmp_path, service):
    path = str(tmp_path / "bundle")
    service.save(path)
    standalone = AuditService.from_artifacts(path)
    assert np.array_equal(standalone.store.margin, service.store.margin)
    assert standalone.top_suspicious(k=10) == service.top_suspicious(k=10)
    # Loaded without a live builder: precomputed lookups work, cold is off.
    assert standalone.stats()["cold_path_available"] is False
    standalone.close()


# -- HTTP API ----------------------------------------------------------------


@pytest.fixture()
def http_server(service):
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return resp.status, json.load(resp)


def _post(base, path, doc):
    req = urllib.request.Request(
        base + path,
        data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.load(resp)


def test_http_healthz_and_stats(http_server, service):
    status, doc = _get(http_server, "/healthz")
    assert status == 200 and doc["n_claims"] == len(service.store)
    status, doc = _get(http_server, "/v1/stats")
    assert status == 200 and "batcher" in doc


def test_http_claim_endpoint(http_server, service):
    pid, cell, tech = _known_key(service.store)
    status, doc = _get(
        http_server,
        f"/v1/claim?provider_id={pid}&cell={cell}&technology={tech}",
    )
    assert status == 200
    assert doc == service.store.record(0)


def test_http_claim_404_and_400(http_server, service):
    pid, cell, tech = _missing_key(service.store)
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(
            http_server,
            f"/v1/claim?provider_id={pid}&cell={cell}&technology={tech}",
        )
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(http_server, "/v1/claim?provider_id=abc&cell=1&technology=1")
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(http_server, "/v1/claim?cell=1&technology=1")
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(http_server, "/v1/nowhere")
    assert err.value.code == 404


def test_http_cold_claim(http_server, service):
    pid, cell, tech = _missing_key(service.store)
    status, doc = _get(
        http_server,
        f"/v1/claim?provider_id={pid}&cell={cell}&technology={tech}&state=TX",
    )
    assert status == 200
    assert doc["precomputed"] is False


def test_http_top(http_server, service):
    status, doc = _get(http_server, "/v1/top?k=7")
    assert status == 200
    assert [r["rank"] for r in doc["results"]] == list(range(7))
    state = doc["results"][0]["state"]
    status, filtered = _get(http_server, f"/v1/top?k=3&state={state}")
    assert all(r["state"] == state for r in filtered["results"])
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(http_server, "/v1/top?k=-1")
    assert err.value.code == 400


def test_http_summaries(http_server, service):
    top = service.top_suspicious(k=1)[0]
    status, doc = _get(http_server, f"/v1/provider/{top['provider_id']}/summary")
    assert status == 200 and doc["n_claims"] > 0
    status, doc = _get(http_server, f"/v1/state/{top['state']}/summary")
    assert status == 200 and doc["state"] == top["state"]
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(http_server, "/v1/provider/abc/summary")
    assert err.value.code == 400


def test_http_bulk_score(http_server, service):
    pid, cell, tech = _known_key(service.store)
    miss = _missing_key(service.store)
    status, doc = _post(
        http_server,
        "/v1/score",
        {
            "claims": [
                {"provider_id": pid, "cell": cell, "technology": tech},
                {
                    "provider_id": miss[0],
                    "cell": miss[1],
                    "technology": miss[2],
                    "state": "CA",
                },
                {"provider_id": -1, "cell": 0, "technology": 10},
            ]
        },
    )
    assert status == 200
    first, cold, unknown = doc["results"]
    assert first["precomputed"] is True
    assert cold["precomputed"] is False
    assert unknown is None
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(http_server, "/v1/score", {"claims": "nope"})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(http_server, "/v1/score", {"claims": [{"provider_id": 1}]})
    assert err.value.code == 400


def test_http_concurrent_claims_coalesce(http_server, service):
    """Concurrent GETs share vectorized batches through the micro-batcher."""
    claims = service.store.claims
    rows = np.linspace(0, len(claims) - 1, 16).astype(int)
    before = service.batcher.stats.batches
    results = {}
    errors = []

    def fetch(row):
        pid = int(claims.provider_id[row])
        cell = int(claims.cell[row])
        tech = int(claims.technology[row])
        try:
            results[row] = _get(
                http_server,
                f"/v1/claim?provider_id={pid}&cell={cell}&technology={tech}",
            )[1]
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=fetch, args=(int(r),)) for r in rows]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(results) == len(rows)
    for row, doc in results.items():
        assert doc == service.store.record(int(row))
    assert service.batcher.stats.batches > before
