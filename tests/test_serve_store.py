"""ClaimScoreStore invariants: scores, percentiles, top-k, persistence."""

import numpy as np
import pytest

from repro.dataset.labeling import _claim_states
from repro.dataset.observations import Observation, LabelSource
from repro.fcc.bdc import ClaimColumns
from repro.fcc.states import STATES
from repro.serve.store import ClaimScoreStore


def test_claim_columns_state_matches_labeling(tiny_world):
    claims = tiny_world.table.columnar()
    states = _claim_states(tiny_world.table)
    for row in range(0, len(claims), max(1, len(claims) // 500)):
        key = claims.key_at(row)
        assert STATES[int(claims.state_idx[row])].abbr == states[key]


def test_claim_columns_export_roundtrip(tiny_world):
    claims = tiny_world.table.columnar()
    clone = ClaimColumns.from_arrays(claims.export_arrays())
    for name, _ in ClaimColumns.EXPORT_FIELDS:
        assert np.array_equal(getattr(clone, name), getattr(claims, name)), name
    probe = slice(0, min(1000, len(claims)))
    assert np.array_equal(
        clone.positions(
            claims.provider_id[probe], claims.cell[probe], claims.technology[probe]
        ),
        np.arange(len(claims))[probe],
    )


def test_store_scores_match_live_model_bitwise(tiny_score_store, tiny_model):
    model, _ = tiny_model
    store = tiny_score_store
    claims = store.claims
    rows = np.linspace(0, len(claims) - 1, 200).astype(int)
    observations = [
        Observation(
            provider_id=int(claims.provider_id[r]),
            cell=int(claims.cell[r]),
            technology=int(claims.technology[r]),
            state=STATES[int(claims.state_idx[r])].abbr,
            unserved=0,
            source=LabelSource.SYNTHETIC,
        )
        for r in rows
    ]
    # The store scored through the binned path; the observation path is
    # float — the two are bitwise identical by the binned-inference
    # contract, so the store must reproduce live predict_proba exactly.
    assert np.array_equal(store.score[rows], model.predict_proba(observations))


def test_store_percentile_invariants(tiny_score_store):
    store = tiny_score_store
    pct = store.percentile
    assert pct.min() > 0.0
    assert pct.max() == 100.0
    # Monotone in margin, ties share a percentile.
    order = np.argsort(store.margin)
    assert (np.diff(pct[order]) >= 0).all()
    m = store.margin
    for row in (0, len(store) // 2):
        ties = m == m[row]
        assert np.unique(pct[ties]).size == 1
        assert pct[row] == pytest.approx(100.0 * ties_below(m, m[row]) / len(store))


def ties_below(margin, value):
    return int((margin <= value).sum())


def test_store_ordering_invariants(tiny_score_store):
    store = tiny_score_store
    order = store.sus_order
    assert np.array_equal(np.sort(order), np.arange(len(store)))
    ordered = store.margin[order]
    assert (np.diff(ordered) <= 0).all()
    # Stable tie-break: equal margins appear in ascending claim-row order.
    same = np.diff(ordered) == 0
    assert (np.diff(order)[same] > 0).all()
    # sus_rank is the inverse permutation; rank 0 is the max margin.
    assert np.array_equal(store.sus_order[store.sus_rank], np.arange(len(store)))
    assert store.margin[store.sus_rank == 0] == store.margin.max()


def test_store_top_k_matches_naive(tiny_score_store):
    store = tiny_score_store
    k = 25
    naive = np.argsort(-store.margin, kind="stable")[:k]
    assert np.array_equal(store.top_suspicious(k=k), naive)
    assert store.top_suspicious(k=0).size == 0
    big = store.top_suspicious(k=len(store) + 10)
    assert big.size == len(store)
    with pytest.raises(ValueError):
        store.top_suspicious(k=-1)


def test_store_top_k_filters(tiny_score_store):
    store = tiny_score_store
    claims = store.claims
    pid = int(claims.provider_id[store.sus_order[0]])
    tech = int(claims.technology[store.sus_order[0]])
    rows = store.top_suspicious(k=10, provider_id=pid, technology=tech)
    assert rows.size > 0
    assert (claims.provider_id[rows] == pid).all()
    assert (claims.technology[rows] == tech).all()
    # Filtered results are exactly the matching prefix of the global order.
    mask = (claims.provider_id == pid) & (claims.technology == tech)
    expected = store.sus_order[mask[store.sus_order]][:10]
    assert np.array_equal(rows, expected)
    # A filter matching nothing returns an empty result, not an error.
    assert store.top_suspicious(k=5, provider_id=-1).size == 0


def test_store_lookup_and_records(tiny_score_store):
    store = tiny_score_store
    claims = store.claims
    rows = np.array([0, len(store) // 2, len(store) - 1])
    pos = store.positions(
        claims.provider_id[rows], claims.cell[rows], claims.technology[rows]
    )
    assert np.array_equal(pos, rows)
    rec = store.record(int(rows[1]))
    assert rec["precomputed"] is True
    assert rec["score"] == pytest.approx(float(store.score[rows[1]]))
    assert rec["rank"] == int(store.sus_rank[rows[1]])
    assert rec["state"] in {s.abbr for s in STATES}
    # A miss maps to -1.
    miss = store.positions(
        np.array([-5], dtype=np.int64),
        claims.cell[:1],
        claims.technology[:1].astype(np.int64),
    )
    assert miss[0] == -1


def test_store_margin_percentile_cold_scale(tiny_score_store):
    store = tiny_score_store
    lo = store.margin.min() - 1.0
    hi = store.margin.max() + 1.0
    pct = store.margin_percentile(np.array([lo, hi]))
    assert pct[0] == 0.0
    assert pct[1] == 100.0
    # A stored margin lands exactly on its own percentile.
    assert store.margin_percentile(store.margin[:50]) == pytest.approx(
        store.percentile[:50]
    )


def test_store_save_load_roundtrip(tmp_path, tiny_score_store):
    store = tiny_score_store
    store.save(str(tmp_path))
    loaded = ClaimScoreStore.load(str(tmp_path))
    assert np.array_equal(loaded.margin, store.margin)
    assert np.array_equal(loaded.score, store.score)
    assert np.array_equal(loaded.percentile, store.percentile)
    assert np.array_equal(loaded.sus_order, store.sus_order)
    for name, _ in ClaimColumns.EXPORT_FIELDS:
        assert np.array_equal(
            getattr(loaded.claims, name), getattr(store.claims, name)
        ), name
    with pytest.raises(FileNotFoundError):
        ClaimScoreStore.load(str(tmp_path / "missing"))


def test_store_rejects_misaligned_margin(tiny_score_store):
    with pytest.raises(ValueError):
        ClaimScoreStore(tiny_score_store.claims, np.zeros(3))


def test_store_arrays_frozen(tiny_score_store):
    for arr in (
        tiny_score_store.margin,
        tiny_score_store.score,
        tiny_score_store.percentile,
        tiny_score_store.sus_order,
    ):
        with pytest.raises(ValueError):
            arr[0] = 0


def test_typed_record_and_dict_encoder_never_drift(tiny_score_store):
    """record() hand-builds the wire dict for speed; the typed encoder
    must always agree with it, field for field and in key order."""
    store = tiny_score_store
    for row in (0, len(store) // 2, len(store) - 1):
        direct = store.record(row)
        typed = store.typed_record(row).to_dict()
        assert direct == typed
        assert list(direct) == list(typed)


def test_page_suspicious_walk_and_filters(tiny_score_store):
    store = tiny_score_store
    # Unfiltered pages concatenate to exactly sus_order.
    seen, after = [], 0
    while True:
        rows, next_rank, total = store.page_suspicious(after_rank=after, limit=30_000)
        assert total == len(store)
        seen.extend(int(r) for r in rows)
        if next_rank is None:
            break
        after = next_rank
    assert seen == [int(r) for r in store.sus_order]
    # Filtered pages concatenate to the masked order.
    pid = int(store.claims.provider_id[int(store.sus_order[0])])
    mask = store.claims.provider_id == pid
    expected = [int(r) for r in store.sus_order[mask[store.sus_order]]]
    got, after = [], 0
    while True:
        rows, next_rank, total = store.page_suspicious(
            after_rank=after, limit=7, provider_id=pid
        )
        assert total == len(expected)
        got.extend(int(r) for r in rows)
        if next_rank is None:
            break
        after = next_rank
    assert got == expected
    with pytest.raises(ValueError):
        store.page_suspicious(limit=0)
    with pytest.raises(ValueError):
        store.page_suspicious(after_rank=-1)


def test_store_etag_tracks_content(tiny_score_store):
    store = tiny_score_store
    assert store.etag == store.etag  # cached, stable
    rebuilt = ClaimScoreStore(store.claims, store.margin.copy())
    assert rebuilt.etag == store.etag  # same content, same fingerprint
    shifted = ClaimScoreStore(store.claims, store.margin + 0.5)
    assert shifted.etag != store.etag
