"""Golden v1 compatibility: every v1 endpoint's body bytes are pinned.

The v2 redesign replaced the if/else dispatcher with the declarative
router and typed schemas; these tests pin the **exact bytes** of every
v1 response — success and failure — to the payloads the old handler
construction produced (``json.dumps`` over the same service-layer
dicts), so the new stack cannot drift the frozen v1 wire format even by
a key reordering or a float rendering change.
"""

import json

import http.client

import pytest

from repro.serve import AuditService


@pytest.fixture(scope="module")
def served(tiny_model, tiny_score_store, ephemeral_server):
    model, _split = tiny_model
    service = AuditService.from_model(model, store=tiny_score_store)
    with ephemeral_server(service) as server:
        yield server, service
    service.close()


def _raw(server, method, path, body=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _encode(payload) -> bytes:
    """Exactly how the v1 server rendered payloads (default json.dumps)."""
    return json.dumps(payload).encode("utf-8")


def _known_key(store):
    row = int(store.sus_order[0])
    return store.claims.key_at(row)


# -- success bodies -----------------------------------------------------------


def test_v1_stats_bytes(served):
    server, service = served
    status, body = _raw(server, "GET", "/v1/stats")
    assert status == 200
    assert body == _encode(service.stats())


def test_v1_claim_bytes(served, tiny_score_store):
    server, service = served
    row = int(tiny_score_store.sus_order[0])
    pid, cell, tech = tiny_score_store.claims.key_at(row)
    status, body = _raw(
        server, "GET", f"/v1/claim?provider_id={pid}&cell={cell}&technology={tech}"
    )
    assert status == 200
    assert body == _encode(tiny_score_store.record(row))


def test_v1_cold_claim_bytes(served, tiny_score_store):
    import numpy as np

    server, service = served
    pid, cell, _tech = _known_key(tiny_score_store)
    missing = next(
        t
        for t in (10, 40, 50, 70, 71)
        if tiny_score_store.positions(
            np.array([pid]), np.array([cell], dtype=np.uint64), np.array([t])
        )[0]
        < 0
    )
    status, body = _raw(
        server,
        "GET",
        f"/v1/claim?provider_id={pid}&cell={cell}&technology={missing}&state=TX",
    )
    assert status == 200
    # The cold record's v1 key order: no claim aggregates, rank null,
    # precomputed directly after rank.
    doc = json.loads(body)
    assert list(doc) == [
        "provider_id",
        "cell",
        "technology",
        "state",
        "score",
        "margin",
        "percentile",
        "rank",
        "precomputed",
    ]
    assert body == _encode(service.score_claim(pid, cell, missing, "TX"))


def test_v1_top_bytes(served):
    server, service = served
    status, body = _raw(server, "GET", "/v1/top?k=5")
    assert status == 200
    assert body == _encode({"results": service.top_suspicious(k=5)})
    state = service.top_suspicious(k=1)[0]["state"]
    status, body = _raw(server, "GET", f"/v1/top?k=3&state={state}")
    assert status == 200
    assert body == _encode({"results": service.top_suspicious(k=3, state=state)})


def test_v1_summaries_bytes(served, tiny_score_store):
    server, service = served
    pid, _cell, _tech = _known_key(tiny_score_store)
    status, body = _raw(server, "GET", f"/v1/provider/{pid}/summary")
    assert status == 200
    assert body == _encode(service.provider_summary(pid))
    state = service.top_suspicious(k=1)[0]["state"]
    status, body = _raw(server, "GET", f"/v1/state/{state}/summary")
    assert status == 200
    assert body == _encode(service.state_summary(state))
    # Empty-provider summary keeps its two-key shape.
    status, body = _raw(server, "GET", "/v1/provider/-1/summary")
    assert status == 200
    assert body == _encode({"provider_id": -1, "n_claims": 0})


def test_v1_score_bytes(served, tiny_score_store):
    server, service = served
    pid, cell, tech = _known_key(tiny_score_store)
    request = json.dumps(
        {
            "claims": [
                {"provider_id": pid, "cell": cell, "technology": tech},
                {"provider_id": -1, "cell": 2, "technology": 3},
            ]
        }
    )
    status, body = _raw(server, "POST", "/v1/score", body=request)
    assert status == 200
    expected = service.score_claims([pid, -1], [cell, 2], [tech, 3])
    assert body == _encode({"results": expected})


# -- failure bodies -----------------------------------------------------------


@pytest.mark.parametrize(
    "path,message",
    [
        ("/v1/claim", "missing required parameter 'provider_id'"),
        ("/v1/claim?provider_id=1&cell=2", "missing required parameter 'technology'"),
        (
            "/v1/claim?provider_id=abc&cell=2&technology=3",
            "parameter 'provider_id' must be an integer",
        ),
        ("/v1/top?k=abc", "parameter 'k' must be an integer"),
        ("/v1/top?k=-1", "k must be in [0, 10000]"),
        ("/v1/top?k=999999", "k must be in [0, 10000]"),
        ("/v1/provider/abc/summary", "provider id must be an integer"),
        # Degenerate paths kept the old prefix/suffix matching: a bad id
        # inside the route shape is a 400 with this message, not a 404.
        ("/v1/provider//summary", "provider id must be an integer"),
        ("/v1/provider/1/2/summary", "provider id must be an integer"),
        ("/v1/state/NOWHERE/summary", "unknown state 'NOWHERE'"),
        ("/v1/state//summary", "unknown state ''"),
        # v1 never interpreted percent-escapes in path segments; the raw
        # segment reaches the handler untouched ('%58' stays '%58').
        ("/v1/state/T%58/summary", "unknown state 'T%58'"),
        ("/v1/provider/1%30/summary", "provider id must be an integer"),
        (
            "/v1/claim?provider_id=1&cell=2&technology=3&state=NOWHERE",
            "unknown state 'NOWHERE'",
        ),
    ],
)
def test_v1_error_bytes(served, path, message):
    server, _service = served
    status, body = _raw(server, "GET", path)
    assert status == 400
    assert body == _encode({"error": message})


def test_v1_not_found_bytes(served):
    server, _service = served
    status, body = _raw(server, "GET", "/v1/nowhere")
    assert status == 404
    assert body == _encode({"error": "no route for /v1/nowhere"})
    status, body = _raw(
        server, "GET", "/v1/claim?provider_id=1&cell=2&technology=3"
    )
    assert status == 404
    assert body == _encode(
        {
            "error": "claim not in the score store (pass state=XX to score "
            "it as a hypothetical filing)"
        }
    )


@pytest.mark.parametrize(
    "body,message",
    [
        ("[1, 2, 3]", 'body must be a JSON object {"claims": [...]}'),
        ('{"claims": "nope"}', 'body must be {"claims": [...]}'),
        ('{"claims": [42]}', "each claim must be an object"),
        (
            '{"claims": [{"cell": 2, "technology": 3}]}',
            "each claim needs integer provider_id, cell, and technology",
        ),
        (
            '{"claims": [{"provider_id": 1, "cell": 2, "technology": 3, "state": 7}]}',
            "claim state must be a string state abbreviation",
        ),
    ],
)
def test_v1_score_error_bytes(served, body, message):
    server, _service = served
    status, raw = _raw(server, "POST", "/v1/score", body=body)
    assert status == 400
    assert raw == _encode({"error": message})
