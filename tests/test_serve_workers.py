"""Pre-fork worker pool: shared-store serving, fleet swap, supervision.

These tests start real forked worker fleets on ephemeral ports, so each
one bounds its own pool lifetime with a context manager.  The store is
the session ``tiny_score_store``, saved once per module as single-shard
bundles (the zero-copy layout the pool is designed around).
"""

import http.client
import json
import os
import signal
import time

import numpy as np
import pytest

from repro.serve import ClaimScoreStore, WorkerPool, WorkerVersionSpec
from repro.serve.service import AuditService
from repro.serve.workers import reuse_port_available


@pytest.fixture(scope="module")
def pool_bundles(tmp_path_factory, tiny_score_store):
    """Saved single-shard bundles: the store and a sign-flipped shadow."""
    root = tmp_path_factory.mktemp("pool-bundles")
    default_dir = str(root / "default")
    flipped_dir = str(root / "flipped")
    tiny_score_store.save_sharded(default_dir, shards=1)
    flipped = ClaimScoreStore(tiny_score_store.claims, -tiny_score_store.margin)
    flipped.save_sharded(flipped_dir, shards=1)
    return {
        "specs": [
            WorkerVersionSpec(name="default", path=default_dir),
            WorkerVersionSpec(name="flipped", path=flipped_dir),
        ],
        "store": tiny_score_store,
        "flipped": flipped,
    }


def _request(port, method, path, body=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _batch_body(store, rows):
    return json.dumps(
        {
            "claims": [
                {
                    "provider_id": int(p),
                    "cell": int(c),
                    "technology": int(t),
                }
                for p, c, t in (store.claims.key_at(int(r)) for r in rows)
            ]
        }
    ).encode()


def test_pool_batchscore_bitwise_identical_to_single_process(pool_bundles):
    """Every worker's batchScore body is byte-for-byte what one
    in-process server would have sent — shared mmap pages change the
    process model, never the wire."""
    store = pool_bundles["store"]
    rows = np.linspace(0, len(store) - 1, 16).astype(int)
    body = _batch_body(store, rows)

    service = AuditService(store, version_name="default")
    import threading

    from repro.serve import make_server

    reference = make_server(service)
    threading.Thread(target=reference.serve_forever, daemon=True).start()
    try:
        status, expected = _request(
            reference.server_address[1], "POST", "/v2/claims:batchScore", body
        )
        assert status == 200
    finally:
        reference.shutdown()
        reference.server_close()
        service.close()

    with WorkerPool(pool_bundles["specs"], n_workers=2) as pool:
        # Fresh connections spread across workers; every one must agree.
        for _ in range(6):
            status, got = _request(
                pool.port, "POST", "/v2/claims:batchScore", body
            )
            assert status == 200
            assert got == expected


def test_pool_metrics_aggregate_across_workers(pool_bundles):
    """``GET /metrics`` answers for the fleet: counters summed across
    workers, the parent's supervision gauges labelled in."""
    store = pool_bundles["store"]
    body = _batch_body(store, np.arange(min(8, len(store))))
    with WorkerPool(pool_bundles["specs"], n_workers=2) as pool:
        n_requests = 5
        for _ in range(n_requests):
            status, _ = _request(pool.port, "POST", "/v2/claims:batchScore", body)
            assert status == 200
        # A handler records its request *after* the response bytes hit
        # the wire, so poll briefly for the last increment to land.
        deadline = time.monotonic() + 5.0
        while True:
            view = pool.fleet_metrics()
            assert view is not None
            # Counters merged by summing: the fleet served what we sent.
            http_total = sum(
                row["value"]
                for row in view["service"]["http_requests_total"]["series"]
            )
            if http_total >= n_requests or time.monotonic() > deadline:
                break
            time.sleep(0.02)
        assert view["workers"] == 2
        assert http_total == n_requests
        # The parent's registry rides along, gauge-labelled per source.
        pool_rows = view["service"]["pool_workers"]["series"]
        assert [row["labels"] for row in pool_rows] == [{"worker": "parent"}]
        assert pool_rows[0]["value"] == 2
        # And the same view over the wire, through any worker.
        status, raw = _request(pool.port, "GET", "/metrics")
        assert status == 200
        doc = json.loads(raw)
        assert doc["workers"] == 2
        assert "pool_workers" in doc["service"]
        assert "http_requests_total" in doc["service"]
        # Prometheus rendering of the merged registries also works.
        status, raw = _request(pool.port, "GET", "/metrics?format=prometheus")
        assert status == 200
        assert b"# TYPE http_requests_total counter" in raw


def test_pool_two_phase_swap_is_fleet_consistent(pool_bundles):
    """activate() flips every worker or none: responses match the old
    default before, the new default after, and an unknown version aborts
    with the fleet untouched."""
    store = pool_bundles["store"]
    flipped = pool_bundles["flipped"]
    row = int(len(store) // 2)
    p, c, t = store.claims.key_at(row)
    path = f"/v2/claims/{int(p)}/{int(c)}/{int(t)}"

    def read_all(pool, n=6):
        out = []
        for _ in range(n):
            status, raw = _request(pool.port, "GET", path)
            assert status == 200
            doc = json.loads(raw)
            out.append((doc["model_version"], doc["record"]["margin"]))
        return out

    with WorkerPool(pool_bundles["specs"], n_workers=2) as pool:
        for version, margin in read_all(pool):
            assert version == "default"
            assert margin == float(store.margin[row])
        desc = pool.activate("flipped")
        assert desc["name"] == "flipped"
        assert desc["etag"] == flipped.etag
        assert pool.default_name == "flipped"
        for version, margin in read_all(pool):
            assert version == "flipped"
            assert margin == float(flipped.margin[row])
        # Unknown version: abort, nothing changes anywhere.
        with pytest.raises(RuntimeError, match="failed to stage"):
            pool.activate("nope")
        assert pool.default_name == "flipped"
        for version, _ in read_all(pool, n=3):
            assert version == "flipped"
        aborted = pool.metrics.counter("pool_swaps_total", outcome="aborted")
        committed = pool.metrics.counter("pool_swaps_total", outcome="committed")
        assert aborted.value == 1
        assert committed.value == 1


def test_pool_respawns_killed_worker_on_current_default(pool_bundles):
    """SIGKILL one worker: the monitor respawns it, the restart counter
    moves, and the replacement comes up serving the *current* default
    (i.e. a post-swap kill heals into the post-swap world)."""
    with WorkerPool(pool_bundles["specs"], n_workers=2) as pool:
        pool.activate("flipped")
        victim = pool.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            pids = pool.ping()
            if len(pids) == 2 and victim not in pids:
                break
            time.sleep(0.05)
        else:
            pytest.fail("killed worker was not respawned in time")
        assert pool.metrics.counter("pool_worker_restarts_total").value >= 1
        described = pool.describe()
        assert len(described) == 2
        assert all(d["default"] == "flipped" for d in described)
        # The respawned fleet still serves coherent responses.
        store = pool_bundles["flipped"]
        row = 0
        p, c, t = store.claims.key_at(row)
        status, raw = _request(
            pool.port, "GET", f"/v2/claims/{int(p)}/{int(c)}/{int(t)}"
        )
        assert status == 200
        doc = json.loads(raw)
        assert doc["model_version"] == "flipped"
        assert doc["record"]["margin"] == float(store.margin[row])


def test_pool_inherited_socket_fallback(pool_bundles):
    """reuse_port=False exercises the parent-bound inherited-socket
    accept model end to end."""
    store = pool_bundles["store"]
    with WorkerPool(
        pool_bundles["specs"], n_workers=2, reuse_port=False
    ) as pool:
        assert not pool.reuse_port
        assert len(pool.describe()) == 2
        body = _batch_body(store, np.arange(min(4, len(store))))
        for _ in range(4):
            status, raw = _request(
                pool.port, "POST", "/v2/claims:batchScore", body
            )
            assert status == 200
            doc = json.loads(raw)
            assert doc["model_version"] == "default"
            assert all(r is not None for r in doc["results"])


def test_reuse_port_detection_matches_platform():
    import socket as _socket

    assert reuse_port_available() == hasattr(_socket, "SO_REUSEPORT")
