"""Tests for the Ookla and MLab generators and the geolocation model."""

import numpy as np
import pytest

from repro.asn import build_whois_registry
from repro.geo import haversine_m, quadkey_to_center
from repro.speedtests import (
    GeolocationModel,
    MLabConfig,
    OoklaConfig,
    generate_mlab_tests,
    generate_ookla_tiles,
)


@pytest.fixture(scope="module")
def registry(small_universe):
    return build_whois_registry(small_universe, seed=99)


@pytest.fixture(scope="module")
def ookla_tiles(small_fabric, small_filings):
    return generate_ookla_tiles(small_fabric, small_filings, seed=3)


@pytest.fixture(scope="module")
def mlab_tests(small_fabric, small_filings, registry):
    truth = {pid: registry.routing_asns(pid) for pid in registry.ownership}
    return generate_mlab_tests(small_fabric, small_filings, truth, seed=3)


# -- geolocation -------------------------------------------------------------


def test_geolocation_radius_positive_and_heavy_tailed():
    model = GeolocationModel()
    rng = np.random.default_rng(0)
    radii = [model.sample(rng, 40.0, -100.0).accuracy_radius_m for _ in range(400)]
    assert min(radii) > 0
    assert np.median(radii) < 10_000
    assert max(radii) > 20_000  # the tail the paper filters out


def test_geolocation_mostly_contained():
    model = GeolocationModel(containment=0.92)
    rng = np.random.default_rng(1)
    contained = 0
    for _ in range(300):
        fix = model.sample(rng, 41.0, -99.0)
        err = haversine_m(41.0, -99.0, fix.lat, fix.lng)
        contained += err <= fix.accuracy_radius_m
    assert contained / 300 > 0.8


def test_geolocation_validation():
    with pytest.raises(ValueError):
        GeolocationModel(median_radius_m=0)
    with pytest.raises(ValueError):
        GeolocationModel(containment=0.0)


# -- Ookla -------------------------------------------------------------------


def test_ookla_tiles_nonempty(ookla_tiles):
    assert len(ookla_tiles) > 100


def test_ookla_counts_positive(ookla_tiles):
    for tile in ookla_tiles[:200]:
        assert tile.tests >= tile.devices >= 1
        assert tile.avg_download_kbps >= 0


def test_ookla_tiles_near_served_areas(ookla_tiles, small_fabric, small_filings):
    # The bulk of test volume must land in truly-served hexes.
    served_cells = set()
    for row in np.where(small_filings.truly_served)[0]:
        served_cells.add(int(small_filings.cell[row]))
    from repro.geo import latlng_to_cell

    in_served = 0
    total = 0
    for tile in ookla_tiles:
        lat, lng = quadkey_to_center(tile.quadkey)
        cell = latlng_to_cell(lat, lng, 8)
        total += tile.devices
        if cell in served_cells:
            in_served += tile.devices
    assert in_served / total > 0.8


def test_ookla_determinism(small_fabric, small_filings):
    a = generate_ookla_tiles(small_fabric, small_filings, seed=4)
    b = generate_ookla_tiles(small_fabric, small_filings, seed=4)
    assert [(t.quadkey, t.tests) for t in a] == [(t.quadkey, t.tests) for t in b]


def test_ookla_config_validation():
    with pytest.raises(ValueError):
        OoklaConfig(devices_per_served_bsl=0).validate()
    with pytest.raises(ValueError):
        OoklaConfig(achieved_speed_fraction=0).validate()


# -- MLab --------------------------------------------------------------------


def test_mlab_tests_have_known_asns(mlab_tests, registry):
    valid = set(registry.asns)
    assert mlab_tests
    assert all(t.asn in valid for t in mlab_tests)


def test_mlab_test_ids_unique(mlab_tests):
    ids = [t.test_id for t in mlab_tests]
    assert len(set(ids)) == len(ids)


def test_mlab_geolocation_fields(mlab_tests):
    for t in mlab_tests[:200]:
        assert t.accuracy_radius_m > 0
        assert -90 <= t.lat <= 90 and -180 <= t.lng <= 180
        assert t.download_mbps > 0


def test_mlab_tests_near_provider_footprint(
    mlab_tests, registry, small_universe, small_fabric
):
    # A test's geolocation should land within radius+slack of some truly
    # served cell of the provider that owns its ASN.
    asn_to_pid = {}
    for pid, asns in registry.ownership.items():
        for asn in asns:
            asn_to_pid.setdefault(asn, pid)
    from repro.geo import cell_to_latlng

    checked = 0
    for t in mlab_tests[:60]:
        pid = asn_to_pid.get(t.asn)
        if pid is None:
            continue
        fps = small_universe.footprints_for_provider(pid)
        true_cells = set().union(*(fp.true_cells for fp in fps.values())) if fps else set()
        if not true_cells:
            continue
        dmin = min(
            haversine_m(t.lat, t.lng, *cell_to_latlng(c)) for c in true_cells
        )
        assert dmin <= t.accuracy_radius_m * 2.5 + 2000
        checked += 1
    assert checked > 10


def test_mlab_determinism(small_fabric, small_filings, registry):
    truth = {pid: registry.routing_asns(pid) for pid in registry.ownership}
    a = generate_mlab_tests(small_fabric, small_filings, truth, seed=8)
    b = generate_mlab_tests(small_fabric, small_filings, truth, seed=8)
    assert [(t.asn, t.lat) for t in a] == [(t.asn, t.lat) for t in b]


def test_mlab_config_validation():
    with pytest.raises(ValueError):
        MLabConfig(tests_per_served_claim=0).validate()


# -- directional aggregation (repro.speedtests.aggregate) ---------------------


def test_directional_summary_down_only_codes_up_as_nan():
    from repro.speedtests import directional_summary

    s = directional_summary([10.0, 30.0, 20.0], [])
    assert s.n_down == 3 and s.median_down == 20.0 and s.p90_down > 0
    # No upload samples: NaN statistics, never a fabricated 0.0 and
    # never a divide-by-zero on a shared denominator.
    assert s.n_up == 0
    assert np.isnan(s.median_up) and np.isnan(s.p90_up)


def test_directional_summary_both_empty():
    from repro.speedtests import directional_summary

    s = directional_summary([], [])
    assert s.n_down == 0 and s.n_up == 0
    assert all(np.isnan(v) for v in (s.median_down, s.p90_down, s.median_up, s.p90_up))


def test_directional_summary_filters_invalid_samples():
    from repro.speedtests import directional_summary, valid_samples

    # Zero, negative, NaN, and inf throughputs are failed measurement
    # legs, not speeds: they drop before aggregation.
    down = [0.0, -4.0, float("nan"), float("inf"), 50.0]
    assert valid_samples(down).tolist() == [50.0]
    s = directional_summary(down, [0.0, float("nan")])
    assert s.n_down == 1 and s.median_down == 50.0
    assert s.n_up == 0 and np.isnan(s.median_up)
