"""Streaming BDC ingestion: exact round-trips, fault rows, crash safety.

The contracts under test, per the module docstring of
:mod:`repro.store.ingest`:

* ``ClaimColumns -> write_bdc_csv -> ingest_csv -> to_claims`` is
  bitwise-exact (floats included) across source splits, chunk sizes,
  and shard layouts;
* every malformed row is rejected to the sidecar with its source file,
  line number, and reason — and never corrupts a shard;
* duplicate composite keys (within a file, across files, and across
  *states*, which route to different shards) keep the first occurrence
  by source order and reject the rest naming the first;
* a killed ingest never moves the manifest: a fresh root stays
  manifest-less, a populated root keeps serving the previous data.
"""

import io
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_random_claims
from repro.fcc.bdc import NBM_SPEED_FLOORS, ClaimColumns
from repro.store import (
    BDC_CSV_FIELDS,
    SHARD_MANIFEST_NAME,
    ShardedClaimColumns,
    ingest_csv,
    write_bdc_csv,
)

HEADER = ",".join(BDC_CSV_FIELDS)


def assert_claims_bitwise(a: ClaimColumns, b: ClaimColumns):
    for name, _ in ClaimColumns.EXPORT_FIELDS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


def _csv(*rows: str) -> io.StringIO:
    src = io.StringIO("\n".join((HEADER,) + rows) + "\n")
    src.name = "inline.csv"
    return src


# -- round-trip ---------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    chunk_rows=st.sampled_from([1, 7, 100, 65_536]),
    layout=st.sampled_from([None, 1, 5]),
    n_sources=st.integers(1, 3),
)
def test_round_trip_bitwise(tmp_path_factory, seed, chunk_rows, layout, n_sources):
    """CSV export -> chunked ingest reproduces the table bitwise, however
    the rows are split across source files."""
    claims = make_random_claims(seed, n=400)
    td = tmp_path_factory.mktemp("ingest")
    n = len(claims)
    bounds = np.linspace(0, n, n_sources + 1).astype(int)
    paths = []
    for i in range(n_sources):
        path = str(td / f"part-{i}.csv")
        write_bdc_csv(claims, path, rows=np.arange(bounds[i], bounds[i + 1]))
        paths.append(path)
    result = ingest_csv(paths, str(td / "root"), shards=layout, chunk_rows=chunk_rows)
    assert result.n_read == n
    assert result.n_ingested == n
    assert result.n_rejected == 0
    assert result.rejected_path is None
    assert_claims_bitwise(result.load().to_claims(), claims)


def test_round_trip_preserves_monolithic_order(tmp_path):
    """Ingested global_rows reproduce the canonical lexicographic order,
    so downstream stores see identical row numbering."""
    claims = make_random_claims(42, n=500)
    path = str(tmp_path / "all.csv")
    # Export in shuffled order: ingest must still recover the canonical one.
    rng = np.random.default_rng(0)
    write_bdc_csv(claims, path, rows=rng.permutation(len(claims)))
    result = ingest_csv([path], str(tmp_path / "root"), shards=4)
    back = result.load()
    assert_claims_bitwise(back.to_claims(), claims)
    pos = back.positions(
        claims.provider_id[:64], claims.cell[:64], claims.technology[:64]
    )
    assert np.array_equal(pos, np.arange(64))


# -- validation and fault rows ------------------------------------------------


def test_malformed_rows_rejected_with_line_numbers(tmp_path):
    good = "7,CA,00000000000000aa,50,3,100.0,20.0,1"
    src = _csv(
        good,                                                # line 2: kept
        "7,CA,00000000000000ab,99,3,100.0,20.0,1",           # line 3: bad tech
        "7,CA,00000000000000ac,50,3,fast,20.0,1",            # line 4: bad speed
        "7,ZZ,00000000000000ad,50,3,100.0,20.0,1",           # line 5: bad state
        "x,CA,00000000000000ae,50,3,100.0,20.0,1",           # line 6: bad pid
        "7,CA,zzzz,50,3,100.0,20.0,1",                       # line 7: bad cell
        "7,CA,00000000000000af,50,0,100.0,20.0,1",           # line 8: bad count
        "7,CA,00000000000000b0,50,3,100.0,20.0,maybe",       # line 9: bad flag
        "7,CA,00000000000000b1,50,3",                        # line 10: truncated
    )
    root = str(tmp_path / "root")
    result = ingest_csv([src], root, shards=2)
    assert result.n_read == 9
    assert result.n_ingested == 1
    assert result.n_rejected == 8
    assert result.reject_reasons == {
        "unknown technology code": 1,
        "bad advertised speed": 1,
        "unknown state": 1,
        "bad provider_id": 1,
        "bad h3 cell id": 1,
        "bad location count": 1,
        "bad low_latency flag": 1,
        "wrong field count": 1,
    }
    with open(result.rejected_path, encoding="utf-8") as fh:
        sidecar = fh.read()
    lines = sidecar.strip().splitlines()
    assert lines[0] == "source,line,reason,raw"
    assert len(lines) == 9
    rejected_lines = sorted(int(line.split(",")[1]) for line in lines[1:])
    assert rejected_lines == [3, 4, 5, 6, 7, 8, 9, 10]
    assert all(line.startswith("inline.csv,") for line in lines[1:])
    # The surviving shard bundle is intact and holds exactly the good row.
    ShardedClaimColumns.verify(root)
    back = result.load().to_claims()
    assert len(back) == 1 and int(back.cell[0]) == 0xAA


def test_rejects_never_corrupt_a_shard(tmp_path):
    """A poison source (every row bad) still commits a valid — empty —
    bundle, and a later good ingest fully replaces it."""
    root = str(tmp_path / "root")
    result = ingest_csv(
        [_csv("nope,XX,zz,99,0,a,b,c")], root, shards=3
    )
    assert result.n_ingested == 0 and result.n_rejected == 1
    ShardedClaimColumns.verify(root)
    assert len(result.load()) == 0
    claims = make_random_claims(3, n=100)
    path = str(tmp_path / "good.csv")
    write_bdc_csv(claims, path)
    result2 = ingest_csv([path], root, shards=3)
    ShardedClaimColumns.verify(root)
    assert_claims_bitwise(result2.load().to_claims(), claims)
    # The poison run's sidecar is garbage-collected with its generation.
    assert not [e for e in os.listdir(root) if e.startswith("rejected-")]


def test_speed_floors_normalize_on_ingest(tmp_path):
    down_floor, up_floor = NBM_SPEED_FLOORS
    src = _csv(
        f"7,CA,00000000000000aa,50,3,{down_floor / 2},{up_floor / 2},1",
        f"8,CA,00000000000000ab,50,3,{down_floor},{up_floor},0",
    )
    result = ingest_csv([src], str(tmp_path / "root"))
    back = result.load().to_claims()
    assert back.max_download_mbps.tolist() == [0.0, float(down_floor)]
    assert back.max_upload_mbps.tolist() == [0.0, float(up_floor)]


def test_header_is_mandatory(tmp_path):
    src = io.StringIO("7,CA,00000000000000aa,50,3,100.0,20.0,1\n")
    with pytest.raises(ValueError, match="BDC header"):
        ingest_csv([src], str(tmp_path / "root"))
    assert not os.path.exists(os.path.join(tmp_path, "root", SHARD_MANIFEST_NAME))


# -- duplicates ---------------------------------------------------------------


def test_duplicate_keys_keep_first_by_source_order(tmp_path):
    a = _csv(
        "7,CA,00000000000000aa,50,3,100.0,20.0,1",
        "7,CA,00000000000000aa,50,9,555.0,55.0,0",  # dup within file
    )
    a.name = "a.csv"
    b = _csv(
        "7,CA,00000000000000aa,50,4,200.0,30.0,1",  # dup across files
    )
    b.name = "b.csv"
    result = ingest_csv([a, b], str(tmp_path / "root"))
    assert result.n_ingested == 1
    assert result.n_rejected == 2
    assert result.reject_reasons == {"duplicate claim key": 2}
    back = result.load().to_claims()
    assert int(back.claimed_count[0]) == 3  # first occurrence won
    with open(result.rejected_path, encoding="utf-8") as fh:
        sidecar = fh.read()
    assert "first seen at a.csv line 2" in sidecar
    assert "b.csv,2," in sidecar and "a.csv,3," in sidecar


def test_duplicate_across_states_lands_in_sidecar(tmp_path):
    """The same composite key filed under two states routes to two
    different shards — the global scan must still catch it."""
    src = _csv(
        "7,CA,00000000000000aa,50,3,100.0,20.0,1",
        "7,TX,00000000000000aa,50,3,100.0,20.0,1",
    )
    result = ingest_csv([src], str(tmp_path / "root"), shards=None)
    assert result.n_ingested == 1
    assert result.reject_reasons == {"duplicate claim key": 1}
    assert result.per_shard["ca"]["n_rows"] == 1
    assert result.per_shard["tx"]["n_rows"] == 0


# -- crash safety -------------------------------------------------------------


class _Dying:
    """A file-like source that dies mid-iteration (a killed ingest)."""

    name = "dying.csv"

    def __init__(self, rows_before_death: int):
        self._lines = [HEADER + "\n"]
        self._lines += [
            f"7,CA,{i:016x},50,3,100.0,20.0,1\n"
            for i in range(rows_before_death)
        ]

    def __iter__(self):
        yield from self._lines
        raise OSError("source truncated mid-stream")


def test_killed_ingest_leaves_fresh_root_empty(tmp_path):
    root = str(tmp_path / "root")
    with pytest.raises(OSError):
        ingest_csv([_Dying(5)], root)
    assert not os.path.exists(os.path.join(root, SHARD_MANIFEST_NAME))


def test_killed_ingest_preserves_previous_generation(tmp_path):
    root = str(tmp_path / "root")
    claims = make_random_claims(9, n=120)
    path = str(tmp_path / "good.csv")
    write_bdc_csv(claims, path)
    ingest_csv([path], root, shards=2)
    manifest_before = ShardedClaimColumns.read_manifest(root)
    with pytest.raises(OSError):
        ingest_csv([_Dying(50)], root, shards=2)
    # Manifest still points at the complete previous generation...
    assert ShardedClaimColumns.read_manifest(root) == manifest_before
    ShardedClaimColumns.verify(root)
    # ...and it still loads bitwise.
    assert_claims_bitwise(
        ShardedClaimColumns.load(root).to_claims(), claims
    )


# -- bookkeeping --------------------------------------------------------------


def test_ingest_stats_recorded_in_manifest(tmp_path):
    claims = make_random_claims(21, n=80)
    path = str(tmp_path / "all.csv")
    write_bdc_csv(claims, path)
    src = _csv("7,CA,zzzz,50,3,100.0,20.0,1")
    result = ingest_csv([path, src], str(tmp_path / "root"), chunk_rows=16)
    manifest = ShardedClaimColumns.read_manifest(result.root)
    stats = manifest["ingest"]
    assert stats["rows_read"] == len(claims) + 1
    assert stats["rows_ingested"] == len(claims)
    assert stats["rows_rejected"] == 1
    assert stats["chunk_rows"] == 16
    assert stats["sources"] == ["all.csv", "inline.csv"]
    assert stats["rejected"] is not None
    assert os.path.basename(result.rejected_path) == stats["rejected"]
    assert sum(s["n_rows"] for s in stats["per_shard"].values()) == len(claims)


def test_stale_sidecars_are_cleaned_up(tmp_path):
    root = str(tmp_path / "root")
    r1 = ingest_csv([_csv("7,CA,zzzz,50,3,1,1,1")], root)
    assert os.path.exists(r1.rejected_path)
    claims = make_random_claims(5, n=40)
    path = str(tmp_path / "good.csv")
    write_bdc_csv(claims, path)
    r2 = ingest_csv([path], root)
    assert r2.rejected_path is None
    assert not os.path.exists(r1.rejected_path)
    sidecars = [e for e in os.listdir(root) if e.startswith("rejected-")]
    assert sidecars == []
