"""The sharded-equivalence property layer: sharded == monolithic, bitwise.

Two tiers:

* **Synthetic property tests** (hypothesis) over random-but-valid
  ``ClaimColumns`` tables: save/load round-trips are bitwise across
  every shard layout (per-state, ``k`` round-robin shards including
  ``k=1`` and ``k > n_states`` with empty shards, explicit maps), hashes
  verify, corruption is detected, and the sharded composite-key lookup
  agrees with the monolithic index on hits and misses.

* **Tiny-world equivalence** over the session model: the frozen-builder
  bundle vectorizes bitwise-identically to the live builder, the
  shard-parallel build reproduces the monolithic margin array bitwise
  (in-process and across worker processes), and a sharded store bundle
  serves the exact monolithic pagination walk.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_random_claims, mmap_backed
from repro.fcc.bdc import ClaimColumns
from repro.fcc.states import STATES
from repro.serve.store import ClaimScoreStore, score_claim_blocks
from repro.store import (
    SHARD_MANIFEST_NAME,
    ShardedClaimColumns,
    build_sharded_margins,
    load_feature_tables,
    save_feature_tables,
)
from repro.utils.indexing import MultiColumnIndex

N_STATES = len(STATES)


def assert_claims_bitwise(a: ClaimColumns, b: ClaimColumns):
    for name, _ in ClaimColumns.EXPORT_FIELDS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


# One strategy for "any supported shard layout".
shard_layouts = st.one_of(
    st.none(),
    st.integers(min_value=1, max_value=N_STATES + 8),
    st.just({s.abbr: ("west" if i % 2 else "east") for i, s in enumerate(STATES)}),
)


# -- synthetic property tests -------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), layout=shard_layouts, mmap=st.booleans())
def test_save_load_round_trip_bitwise(tmp_path_factory, seed, layout, mmap):
    """Splitting, saving, and loading reassembles the table bitwise."""
    claims = make_random_claims(seed, n=600)
    root = str(tmp_path_factory.mktemp("bundle"))
    sharded = ShardedClaimColumns.from_claims(claims, shards=layout)
    assert len(sharded) == len(claims)
    sharded.save(root)
    back = ShardedClaimColumns.load(root, mmap=mmap)
    assert back.shard_names == sharded.shard_names
    assert back.state_to_shard == sharded.state_to_shard
    for name in sharded.shard_names:
        assert_claims_bitwise(back.shard(name), sharded.shard(name))
        assert np.array_equal(back.global_rows(name), sharded.global_rows(name))
    assert_claims_bitwise(back.to_claims(), claims)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), layout=shard_layouts)
def test_positions_equivalence_hits_and_misses(seed, layout):
    """Sharded key lookup == monolithic index, for present and absent keys."""
    claims = make_random_claims(seed, n=500)
    sharded = ShardedClaimColumns.from_claims(claims, shards=layout)
    rng = np.random.default_rng(seed)
    hit_rows = rng.integers(0, len(claims), 40)
    pid = np.r_[claims.provider_id[hit_rows], [-1, 10**6]]
    cell = np.r_[claims.cell[hit_rows], [np.uint64(3), np.uint64(2**60)]]
    tech = np.r_[claims.technology[hit_rows], [50, 71]].astype(np.int16)
    expected = claims.positions(pid, cell, tech)
    assert np.array_equal(sharded.positions(pid, cell, tech), expected)
    # The first 40 probes were drawn from the table: all must be hits.
    assert (expected[:40] >= 0).all()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_persisted_index_survives_round_trip(tmp_path_factory, seed):
    """Loaded shards answer lookups from the *persisted* index state."""
    claims = make_random_claims(seed, n=400)
    root = str(tmp_path_factory.mktemp("bundle"))
    sharded = ShardedClaimColumns.from_claims(claims, shards=3)
    for name in sharded.shard_names:
        sharded.shard(name).index  # force the index so save() persists it
    sharded.save(root)
    back = ShardedClaimColumns.load(root)
    for name in back.shard_names:
        shard = back.shard(name)
        # from_state() populated the lazy slot at load time.
        assert object.__getattribute__(shard, "_index") is not None
        live = sharded.shard(name)
        if not len(shard):
            continue
        pos = shard.positions(
            live.provider_id[:10], live.cell[:10], live.technology[:10]
        )
        assert np.array_equal(pos, np.arange(min(10, len(shard))))


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_keys=st.integers(0, 200),
)
def test_multi_column_index_state_round_trip(seed, n_keys):
    """export_state()/from_state() preserve lookup behaviour exactly."""
    rng = np.random.default_rng(seed)
    pid = np.sort(rng.integers(0, 50, n_keys)).astype(np.int64)
    cell = rng.integers(0, 2**52, n_keys).astype(np.uint64)
    tech = rng.integers(0, 80, n_keys).astype(np.int64)
    order = np.lexsort((tech, cell, pid))
    keys = np.stack(
        [pid[order].astype(np.uint64), cell[order], tech[order].astype(np.uint64)],
        axis=1,
    )
    keep = (
        np.r_[True, np.any(keys[1:] != keys[:-1], axis=1)]
        if n_keys
        else np.zeros(0, dtype=bool)
    )
    rows = order[keep]
    idx = MultiColumnIndex(pid[rows], cell[rows], tech[rows])
    back = MultiColumnIndex.from_state(idx.export_state())
    assert back.n_keys == idx.n_keys
    probe_pid = np.r_[pid[rows][:20], [-7]]
    probe_cell = np.r_[cell[rows][:20], [np.uint64(9)]]
    probe_tech = np.r_[tech[rows][:20], [50]]
    assert np.array_equal(
        back.positions(probe_pid, probe_cell, probe_tech),
        idx.positions(probe_pid, probe_cell, probe_tech),
    )


def test_from_state_rejects_malformed():
    idx = MultiColumnIndex(
        np.array([1, 2], dtype=np.int64),
        np.array([3, 4], dtype=np.uint64),
        np.array([5, 6], dtype=np.int64),
    )
    state = idx.export_state()
    with pytest.raises(ValueError):
        MultiColumnIndex.from_state(
            {k: v for k, v in state.items() if k != "pos_by_code"}
        )
    with pytest.raises(ValueError):
        MultiColumnIndex.from_state(
            {k: v for k, v in state.items() if k != "stage_0"}
        )


def test_verify_detects_corruption(tmp_path):
    claims = make_random_claims(11, n=300)
    root = str(tmp_path / "bundle")
    ShardedClaimColumns.from_claims(claims, shards=2).save(root)
    n_checked = ShardedClaimColumns.verify(root)
    assert n_checked > 0
    # Flip one byte inside one column payload: verify must notice.
    manifest = ShardedClaimColumns.read_manifest(root)
    victim = os.path.join(
        root, manifest["shards"][0]["files"]["provider_id"]["path"]
    )
    with open(victim, "r+b") as fh:
        fh.seek(-1, os.SEEK_END)
        byte = fh.read(1)
        fh.seek(-1, os.SEEK_END)
        fh.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(ValueError, match="hash"):
        ShardedClaimColumns.verify(root)


def test_verify_detects_missing_file(tmp_path):
    claims = make_random_claims(12, n=200)
    root = str(tmp_path / "bundle")
    ShardedClaimColumns.from_claims(claims, shards=1).save(root)
    manifest = ShardedClaimColumns.read_manifest(root)
    victim = os.path.join(root, manifest["shards"][0]["files"]["cell"]["path"])
    os.unlink(victim)
    with pytest.raises(FileNotFoundError):
        ShardedClaimColumns.verify(root)


def test_load_rejects_dtype_drift(tmp_path):
    claims = make_random_claims(13, n=200)
    root = str(tmp_path / "bundle")
    ShardedClaimColumns.from_claims(claims, shards=1).save(root)
    manifest = ShardedClaimColumns.read_manifest(root)
    path = os.path.join(
        root, manifest["shards"][0]["files"]["claimed_count"]["path"]
    )
    np.save(path, np.load(path).astype(np.int32))
    with pytest.raises(ValueError, match="dtype"):
        ShardedClaimColumns.load(root)


def test_generations_are_garbage_collected(tmp_path):
    claims = make_random_claims(14, n=150)
    root = str(tmp_path / "bundle")
    sharded = ShardedClaimColumns.from_claims(claims, shards=2)
    sharded.save(root)
    first_gen = ShardedClaimColumns.read_manifest(root)["generation"]
    sharded.save(root)
    second = ShardedClaimColumns.read_manifest(root)
    assert second["generation"] != first_gen
    gens = [d for d in os.listdir(root) if d.startswith("data-")]
    assert gens == [second["generation"]]
    # And the survivor still loads + verifies.
    ShardedClaimColumns.verify(root)
    assert_claims_bitwise(ShardedClaimColumns.load(root).to_claims(), claims)


def test_manifest_commit_fsyncs_before_and_after_rename(tmp_path, monkeypatch):
    """The rename is the commit point: the tmp manifest's bytes must be
    fsynced before ``os.replace`` and the directory entry after it, or a
    crash can surface a committed-but-torn manifest."""
    import repro.store.sharded as sharded_mod

    events = []
    real_fsync, real_replace = os.fsync, os.replace

    def spy_fsync(fd):
        events.append(("fsync", "dir" if _fd_is_dir(fd) else "file"))
        real_fsync(fd)

    def _fd_is_dir(fd):
        import stat

        return stat.S_ISDIR(os.fstat(fd).st_mode)

    def spy_replace(src, dst):
        events.append(("replace", os.path.basename(dst)))
        real_replace(src, dst)

    monkeypatch.setattr(os, "fsync", spy_fsync)
    monkeypatch.setattr(sharded_mod.os, "replace", spy_replace)
    claims = make_random_claims(15, n=120)
    root = str(tmp_path / "bundle")
    ShardedClaimColumns.from_claims(claims, shards=2).save(root)

    commit = events.index(("replace", "manifest.json"))
    before, after = events[:commit], events[commit + 1 :]
    assert ("fsync", "file") in before  # tmp manifest contents on disk
    assert ("fsync", "dir") in before  # tmp entry durable pre-rename
    assert ("fsync", "dir") in after  # the rename itself durable
    assert_claims_bitwise(ShardedClaimColumns.load(root).to_claims(), claims)


def test_empty_table_round_trips(tmp_path):
    claims = make_random_claims(0, n=0)
    root = str(tmp_path / "bundle")
    ShardedClaimColumns.from_claims(claims, shards=4).save(root)
    back = ShardedClaimColumns.load(root)
    assert len(back) == 0
    assert all(len(back.shard(n)) == 0 for n in back.shard_names)
    assert back.positions(
        np.array([1], dtype=np.int64),
        np.array([2], dtype=np.uint64),
        np.array([50], dtype=np.int16),
    ).tolist() == [-1]


def test_partial_state_map_is_rejected():
    claims = make_random_claims(15, n=50)
    with pytest.raises(ValueError, match="every state"):
        ShardedClaimColumns.from_claims(claims, shards={"CA": "west"})
    with pytest.raises(ValueError, match=">= 1"):
        ShardedClaimColumns.from_claims(claims, shards=0)


def test_extra_arrays_round_trip_and_cannot_shadow(tmp_path):
    claims = make_random_claims(16, n=300)
    sharded = ShardedClaimColumns.from_claims(claims, shards=2)
    extras = {
        name: {"margin": np.arange(len(sharded.shard(name)), dtype=np.float64)}
        for name in sharded.shard_names
    }
    root = str(tmp_path / "bundle")
    sharded.save(root, extra_shard_arrays=extras, extra_manifest={"store": {"k": 1}})
    manifest = ShardedClaimColumns.read_manifest(root)
    assert manifest["store"] == {"k": 1}
    back = ShardedClaimColumns.load(root)
    for name in back.shard_names:
        assert np.array_equal(
            back.extra_arrays[name]["margin"], extras[name]["margin"]
        )
    with pytest.raises(ValueError, match="shadows"):
        sharded.save(
            root, extra_shard_arrays={sharded.shard_names[0]: {"cell": np.zeros(1)}}
        )


# -- tiny-world equivalence ----------------------------------------------------


@pytest.fixture(scope="module")
def tiny_claims(tiny_builder):
    return tiny_builder.claims


def test_frozen_builder_vectorizes_bitwise(tmp_path, tiny_builder, tiny_claims):
    """The world-detached feature bundle reproduces live vectorization."""
    from repro.dataset.observations import ObservationColumns

    path = str(tmp_path / "features")
    save_feature_tables(path, tiny_builder)
    frozen = load_feature_tables(path, claims=tiny_claims)
    assert frozen.feature_names == tiny_builder.feature_names
    rows = np.linspace(0, len(tiny_claims.provider_id) - 1, 512).astype(np.intp)
    abbrs = np.array([s.abbr for s in STATES], dtype=object)
    obs = ObservationColumns(
        provider_id=tiny_claims.provider_id[rows],
        cell=tiny_claims.cell[rows],
        technology=tiny_claims.technology[rows].astype(np.int64),
        state=abbrs[tiny_claims.state_idx[rows]],
        unserved=np.zeros(rows.size, dtype=np.int64),
    )
    assert np.array_equal(
        frozen.vectorize_columns(obs), tiny_builder.vectorize_columns(obs)
    )


def test_build_sharded_matches_monolithic_in_process(
    tmp_path, tiny_model, tiny_builder, tiny_score_store
):
    """Tier-1 equivalence smoke: sharded build (1 worker, through the
    on-disk worker bundles) is bitwise-identical to the monolithic
    store for the full tiny world."""
    model, _ = tiny_model
    store = ClaimScoreStore.build_sharded(
        model.classifier,
        tiny_builder,
        shards=4,
        n_workers=1,
        workdir=str(tmp_path / "work"),
    )
    assert np.array_equal(store.margin, tiny_score_store.margin)
    assert np.array_equal(store.sus_order, tiny_score_store.sus_order)
    assert store.etag == tiny_score_store.etag


@pytest.mark.slow
def test_build_sharded_matches_monolithic_multiprocess(
    tiny_model, tiny_builder, tiny_score_store
):
    """Worker processes (fork or spawn) reproduce the monolithic margins
    bitwise across the full per-state layout."""
    model, _ = tiny_model
    store = ClaimScoreStore.build_sharded(
        model.classifier, tiny_builder, shards=None, n_workers=2
    )
    assert np.array_equal(store.margin, tiny_score_store.margin)


def test_score_claim_blocks_is_block_size_invariant(
    tiny_model, tiny_builder, tiny_claims, tiny_score_store
):
    """The scoring kernel's margins do not depend on batch composition —
    the property that makes any row partition (blocks, shards,
    processes) bitwise-equivalent."""
    model, _ = tiny_model
    sub = tiny_claims.take(np.arange(0, len(tiny_claims.provider_id), 37))
    a = score_claim_blocks(model.classifier, tiny_builder, sub, block_rows=64)
    b = score_claim_blocks(model.classifier, tiny_builder, sub, block_rows=10_000)
    assert np.array_equal(a, b)
    rows = np.arange(0, len(tiny_claims.provider_id), 37)
    assert np.array_equal(a, tiny_score_store.margin[rows])


def test_store_sharded_save_load_and_pagination(tmp_path, tiny_score_store):
    """A sharded store bundle serves the exact monolithic suspicion walk."""
    store = tiny_score_store
    root = str(tmp_path / "store")
    store.save_sharded(root, shards=6)
    back = ClaimScoreStore.load_sharded(root)
    assert np.array_equal(back.margin, store.margin)
    assert np.array_equal(back.sus_order, store.sus_order)
    assert back.etag == store.etag
    # Unfiltered pagination walk == sus_order, element for element.
    seen, rank = [], 0
    while rank is not None:
        rows, rank, total = back.page_suspicious(after_rank=rank, limit=997)
        seen.append(rows)
        assert total == len(store)
    assert np.array_equal(np.concatenate(seen), store.sus_order)
    # Filtered walk too.
    pid = int(store.claims.provider_id[int(store.sus_order[0])])
    expected = store.sus_order[
        (store.claims.provider_id == pid)[store.sus_order]
    ]
    seen, rank = [], 0
    while rank is not None:
        rows, rank, total = back.page_suspicious(
            after_rank=rank, limit=7, provider_id=pid
        )
        seen.append(rows)
        assert total == expected.size
    assert np.array_equal(np.concatenate(seen), expected)


def test_single_shard_store_serves_mmap_backed(tmp_path, tiny_score_store):
    """One-shard bundles load zero-copy: claims and margin stay views
    over the mapped files, nothing is materialized."""
    root = str(tmp_path / "store")
    tiny_score_store.save_sharded(root, shards=1)
    back = ClaimScoreStore.load_sharded(root, mmap=True)
    assert mmap_backed(back.claims.provider_id)
    assert mmap_backed(back.claims.cell)
    assert mmap_backed(back.margin)
    assert np.array_equal(back.margin, tiny_score_store.margin)
    # mmap=False materializes plain arrays instead.
    eager = ClaimScoreStore.load_sharded(root, mmap=False)
    assert not mmap_backed(eager.claims.provider_id)
    assert np.array_equal(eager.margin, tiny_score_store.margin)


def test_single_shard_bundle_persists_derived_arrays(tmp_path, tiny_score_store):
    """One-shard bundles carry the derived serving arrays (score, ranks,
    percentiles) so a forked worker pool shares the mapped pages instead
    of each process recomputing a private heap copy — and the persisted
    arrays are bitwise what the constructor would have derived."""
    root = str(tmp_path / "store")
    tiny_score_store.save_sharded(root, shards=1)
    back = ClaimScoreStore.load_sharded(root, mmap=True)
    # All five derived arrays came off the map, not a recompute.
    assert mmap_backed(back.score)
    assert mmap_backed(back.sus_order)
    assert mmap_backed(back.sus_rank)
    assert mmap_backed(back.percentile)
    assert mmap_backed(back._sorted_margin)
    for name in ClaimScoreStore._DERIVED_SPECS:
        a = getattr(back, "_sorted_margin" if name == "sorted_margin" else name)
        b = getattr(
            tiny_score_store,
            "_sorted_margin" if name == "sorted_margin" else name,
        )
        assert np.array_equal(a, b), name
        assert a.dtype == b.dtype, name
    # The loaded store serves identically (etag included).
    assert back.etag == tiny_score_store.etag
    # include_derived=False keeps the lean layout: load still works, via
    # the recompute path.
    lean_root = str(tmp_path / "lean")
    tiny_score_store.save_sharded(lean_root, shards=1, include_derived=False)
    lean = ClaimScoreStore.load_sharded(lean_root, mmap=True)
    assert not mmap_backed(lean.score)
    assert np.array_equal(lean.score, tiny_score_store.score)


def test_load_sharded_rejects_claims_only_bundle(tmp_path, tiny_claims):
    root = str(tmp_path / "bundle")
    ShardedClaimColumns.from_claims(tiny_claims, shards=2).save(root)
    with pytest.raises(ValueError, match="margin"):
        ClaimScoreStore.load_sharded(root)


def test_build_sharded_margins_roundtrip_with_kept_workdir(
    tmp_path, tiny_model, tiny_builder, tiny_claims, tiny_score_store
):
    """With an explicit workdir the intermediate bundles survive and the
    margin partials re-stitch to the monolithic array."""
    model, _ = tiny_model
    sub_rows = np.arange(0, len(tiny_claims.provider_id), 11)
    sub = tiny_claims.take(sub_rows)
    sharded = ShardedClaimColumns.from_claims(sub, shards=3)
    workdir = str(tmp_path / "work")
    margin = build_sharded_margins(
        model.classifier, tiny_builder, sharded, n_workers=1, workdir=workdir
    )
    assert np.array_equal(margin, tiny_score_store.margin[sub_rows])
    assert os.path.exists(os.path.join(workdir, "claims", SHARD_MANIFEST_NAME))
    partials = os.listdir(os.path.join(workdir, "margins"))
    assert len(partials) == sum(
        1 for n in sharded.shard_names if len(sharded.shard(n))
    )
