"""Tests for the vectorized key indexes in repro.utils.indexing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.indexing import ColumnIndex, MultiColumnIndex


# -- ColumnIndex ---------------------------------------------------------------


def test_column_index_basic():
    idx = ColumnIndex(np.array([30, 10, 20], dtype=np.int64))
    out = idx.positions(np.array([10, 20, 30, 40], dtype=np.int64))
    assert out.tolist() == [1, 2, 0, -1]


def test_column_index_empty():
    idx = ColumnIndex(np.array([], dtype=np.int64))
    assert idx.positions(np.array([1, 2], dtype=np.int64)).tolist() == [-1, -1]
    idx2 = ColumnIndex(np.array([5], dtype=np.int64))
    assert idx2.positions(np.array([], dtype=np.int64)).size == 0


def test_column_index_rejects_duplicates():
    with pytest.raises(ValueError):
        ColumnIndex(np.array([1, 1, 2], dtype=np.int64))


def test_column_index_uint64_full_range():
    """H3-style ids above 2^63 must not round-trip through float64."""
    big = np.array([2**63 + 5, 2**63 + 6, 2**64 - 1], dtype=np.uint64)
    idx = ColumnIndex(big)
    out = idx.positions(np.array([2**63 + 6, 2**63 + 7], dtype=np.uint64))
    assert out.tolist() == [1, -1]


def test_column_index_rejects_signed_unsigned_mix():
    idx = ColumnIndex(np.array([1, 2], dtype=np.uint64))
    with pytest.raises(TypeError):
        idx.positions(np.array([1], dtype=np.int64))


def test_column_index_rejects_floats():
    with pytest.raises(TypeError):
        ColumnIndex(np.array([1.5, 2.5]))


@settings(deadline=None, max_examples=50)
@given(
    keys=st.lists(st.integers(-(2**40), 2**40), unique=True, max_size=60),
    queries=st.lists(st.integers(-(2**40), 2**40), max_size=60),
)
def test_column_index_matches_dict(keys, queries):
    index = ColumnIndex(np.array(keys, dtype=np.int64))
    reference = {k: i for i, k in enumerate(keys)}
    out = index.positions(np.array(queries, dtype=np.int64))
    assert out.tolist() == [reference.get(q, -1) for q in queries]


# -- MultiColumnIndex ----------------------------------------------------------


def test_multi_column_index_basic():
    idx = MultiColumnIndex(
        np.array([1, 1, 2], dtype=np.int64),
        np.array([10, 11, 10], dtype=np.uint64),
    )
    out = idx.positions(
        np.array([1, 2, 2, 1], dtype=np.int64),
        np.array([11, 10, 11, 12], dtype=np.uint64),
    )
    assert out.tolist() == [1, 2, -1, -1]


def test_multi_column_index_rejects_duplicates():
    with pytest.raises(ValueError):
        MultiColumnIndex(
            np.array([1, 1], dtype=np.int64), np.array([7, 7], dtype=np.int64)
        )


def test_multi_column_index_column_count_mismatch():
    idx = MultiColumnIndex(np.array([1], dtype=np.int64), np.array([2], dtype=np.int64))
    with pytest.raises(ValueError):
        idx.positions(np.array([1], dtype=np.int64))


def test_multi_column_index_empty():
    idx = MultiColumnIndex(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    out = idx.positions(np.array([1], dtype=np.int64), np.array([2], dtype=np.int64))
    assert out.tolist() == [-1]


@settings(deadline=None, max_examples=50)
@given(st.data())
def test_multi_column_index_matches_dict(data):
    n_cols = data.draw(st.integers(1, 3))
    keys = data.draw(
        st.lists(
            st.tuples(*[st.integers(0, 40) for _ in range(n_cols)]),
            unique=True,
            max_size=50,
        )
    )
    queries = data.draw(
        st.lists(
            st.tuples(*[st.integers(0, 45) for _ in range(n_cols)]), max_size=50
        )
    )
    cols = [
        np.array([k[c] for k in keys], dtype=np.int64) for c in range(n_cols)
    ]
    index = MultiColumnIndex(*cols)
    reference = {k: i for i, k in enumerate(keys)}
    qcols = [
        np.array([q[c] for q in queries], dtype=np.int64) for c in range(n_cols)
    ]
    out = index.positions(*qcols)
    assert out.tolist() == [reference.get(q, -1) for q in queries]
