"""Tests for deterministic RNG stream derivation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import SeedSequenceRegistry, stream_rng, stream_seed


def test_same_stream_same_seed():
    assert stream_seed(42, "fabric") == stream_seed(42, "fabric")


def test_different_stream_different_seed():
    assert stream_seed(42, "fabric") != stream_seed(42, "ookla")


def test_different_master_different_seed():
    assert stream_seed(42, "fabric") != stream_seed(43, "fabric")


def test_multipart_names_do_not_collide_with_concatenation():
    # ("ab", "c") must differ from ("a", "bc").
    assert stream_seed(1, "ab", "c") != stream_seed(1, "a", "bc")


def test_stream_rng_reproducible():
    a = stream_rng(7, "x").random(5)
    b = stream_rng(7, "x").random(5)
    np.testing.assert_array_equal(a, b)


def test_seed_is_63_bit_nonnegative():
    seed = stream_seed(123456789, "anything")
    assert 0 <= seed < 2**63


@given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
def test_stream_seed_total_and_stable(master, name):
    s1 = stream_seed(master, name)
    s2 = stream_seed(master, name)
    assert s1 == s2
    assert 0 <= s1 < 2**63


def test_registry_tracks_requests():
    reg = SeedSequenceRegistry(1)
    reg.rng("a")
    reg.rng("b", 2)
    assert reg.requested_streams == [("a",), ("b", 2)]


def test_registry_same_stream_same_draws():
    reg = SeedSequenceRegistry(5)
    assert reg.rng("s").integers(0, 1000) == reg.rng("s").integers(0, 1000)


def test_registry_int_name_parts():
    reg = SeedSequenceRegistry(5)
    assert reg.seed("tree", 0) != reg.seed("tree", 1)
