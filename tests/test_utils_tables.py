"""Tests for ASCII table rendering."""

import pytest

from repro.utils import format_cdf, format_kv, format_series, format_table


def test_basic_table_alignment():
    out = format_table(["name", "v"], [["a", 1.0], ["bb", 2.5]], floatfmt=".1f")
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "1.0" in lines[2]
    assert "2.5" in lines[3]


def test_table_title():
    out = format_table(["x"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_table_int_not_float_formatted():
    out = format_table(["n"], [[12345]])
    assert "12345" in out


def test_format_kv():
    out = format_kv([("alpha", 1), ("b", 0.5)], floatfmt=".2f")
    lines = out.splitlines()
    assert lines[0].startswith("alpha")
    assert "0.50" in lines[1]


def test_format_kv_empty():
    assert format_kv([]) == ""


def test_format_cdf_quantiles_monotone():
    out = format_cdf(list(range(100)))
    assert "p50" in out


def test_format_cdf_empty():
    assert format_cdf([]) == "(empty)"


def test_format_series_pairs():
    out = format_series(["a", "b"], [1.0, 2.0], xlabel="rel", ylabel="count")
    assert "rel" in out and "count" in out


def test_format_series_length_mismatch():
    with pytest.raises(ValueError):
        format_series([1], [1.0, 2.0])
