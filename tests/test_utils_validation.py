"""Tests for argument-validation helpers."""

import math

import pytest

from repro.utils import (
    check_in_range,
    check_latitude,
    check_longitude,
    check_positive,
    check_probability,
)


@pytest.mark.parametrize("lat", [-90.0, 0.0, 45.5, 90.0])
def test_valid_latitudes(lat):
    assert check_latitude(lat) == lat


@pytest.mark.parametrize("lat", [-91.0, 90.1, float("nan"), float("inf")])
def test_invalid_latitudes(lat):
    with pytest.raises(ValueError):
        check_latitude(lat)


@pytest.mark.parametrize("lng", [-180.0, 0.0, 179.9, 180.0])
def test_valid_longitudes(lng):
    assert check_longitude(lng) == lng


@pytest.mark.parametrize("lng", [-180.5, 181.0, float("nan")])
def test_invalid_longitudes(lng):
    with pytest.raises(ValueError):
        check_longitude(lng)


def test_check_in_range_bounds_inclusive():
    assert check_in_range(0, 0, 1) == 0.0
    assert check_in_range(1, 0, 1) == 1.0
    with pytest.raises(ValueError):
        check_in_range(1.01, 0, 1)


def test_check_positive():
    assert check_positive(0.5) == 0.5
    for bad in (0.0, -1.0, float("nan")):
        with pytest.raises(ValueError):
            check_positive(bad)


def test_check_probability():
    assert check_probability(0.3) == 0.3
    with pytest.raises(ValueError):
        check_probability(-0.1)
