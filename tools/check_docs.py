"""Docs smoke for CI: files exist, links resolve, modules are documented.

Seven checks:

1. the top-level docs exist;
2. every markdown link in ``README.md``, ``ROADMAP.md``, and
   ``docs/*.md`` with a *local* target (no URL scheme) resolves to a
   real file or directory relative to the linking document — anchors
   (``file.md#section``) are checked against the file only;
3. every public module under ``src/repro`` (non-underscore ``.py``
   files) is mentioned by name somewhere in the combined docs, and every
   *package* (directory with an ``__init__.py``) is mentioned by its
   full dotted name (``repro.enrich``), so new subsystems cannot land
   undocumented;
4. every HTTP route pattern registered in ``repro.serve.http`` (scanned
   textually, so this script stays dependency-free for the CI docs job)
   appears in the combined docs — a new endpoint cannot land without an
   API-reference entry;
5. every top-level section of the committed ``BENCH_perf.json`` is
   mentioned by name in the combined docs — a new benchmark cannot land
   without its schema documented (``docs/PERFORMANCE.md`` is where they
   belong);
6. every metric and span name declared in ``repro.obs.catalog`` (parsed
   with ``ast.literal_eval``, no imports) appears in the combined docs —
   ``docs/OBSERVABILITY.md`` is the catalog's reference;
7. every literal metric registration (``.counter("..." ...)``) and span
   site (``span("...")``) in ``src/repro`` uses a cataloged name, so an
   uncataloged series cannot land even before the runtime check trips.

Run::

    python tools/check_docs.py
"""

from __future__ import annotations

import ast
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

REQUIRED = [
    "README.md",
    os.path.join("docs", "ARCHITECTURE.md"),
    os.path.join("docs", "OBSERVABILITY.md"),
    os.path.join("docs", "PERFORMANCE.md"),
    os.path.join("docs", "TESTING.md"),
    "ROADMAP.md",
]

#: Inline markdown links: [text](target)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")


def _module_names() -> list[str]:
    """Dotted names of every public module under ``src/repro``."""
    out = []
    for dirpath, dirnames, filenames in os.walk(SRC_ROOT):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("__"))
        for name in sorted(filenames):
            if name.endswith(".py") and not name.startswith("_"):
                rel = os.path.relpath(os.path.join(dirpath, name), SRC_ROOT)
                out.append("repro." + rel[:-3].replace(os.sep, "."))
    return out


def _undocumented_modules(docs_text: str) -> list[str]:
    """Public modules whose name never appears in the combined docs."""
    missing = []
    for module in _module_names():
        basename = module.rsplit(".", 1)[-1]
        if not re.search(rf"\b{re.escape(basename)}\b", docs_text):
            missing.append(module)
    return missing


def _package_names() -> list[str]:
    """Dotted names of every package under ``src/repro``."""
    out = ["repro"]
    for dirpath, dirnames, _filenames in os.walk(SRC_ROOT):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("__"))
        for name in dirnames:
            if os.path.exists(os.path.join(dirpath, name, "__init__.py")):
                rel = os.path.relpath(os.path.join(dirpath, name), SRC_ROOT)
                out.append("repro." + rel.replace(os.sep, "."))
    return sorted(out)


def _undocumented_packages(docs_text: str) -> list[str]:
    """Packages whose *dotted* name never appears in the combined docs.

    Module basenames can collide with prose words; the dotted form
    (``repro.enrich``) is unambiguous, so a whole new subsystem package
    must be introduced by name, not just have its files mentioned.
    """
    return [
        package
        for package in _package_names()
        if not re.search(rf"\b{re.escape(package)}\b", docs_text)
    ]


#: Route patterns inside router.add("METHOD", "/path", ...) calls.
_ROUTE_RE = re.compile(
    r"""router\.add\(\s*\n?\s*["'](?:GET|POST)["'],\s*\n?\s*["']([^"']+)["']"""
)

_HTTP_MODULE = os.path.join(SRC_ROOT, "serve", "http.py")


def _route_patterns() -> list[str]:
    """Every route pattern registered by the serve HTTP module.

    Capture modifiers (``{param:path}``) are stripped: docs describe the
    public ``{param}`` shape, not the matcher internals.
    """
    if not os.path.exists(_HTTP_MODULE):
        return []
    text = open(_HTTP_MODULE, encoding="utf-8").read()
    patterns = (
        re.sub(r"\{([a-zA-Z_][a-zA-Z0-9_]*):[a-z]+\}", r"{\1}", p)
        for p in _ROUTE_RE.findall(text)
    )
    return sorted(set(patterns))


def _undocumented_routes(docs_text: str) -> list[str]:
    """Registered routes whose pattern never appears in the docs."""
    return [p for p in _route_patterns() if p not in docs_text]


_CATALOG_MODULE = os.path.join(SRC_ROOT, "obs", "catalog.py")

#: Literal metric registrations: registry.counter("name", ...) etc.
_METRIC_CALL_RE = re.compile(
    r"""\.(?:counter|gauge|histogram)\(\s*["']([a-z0-9_]+)["']"""
)

#: Literal span sites: span("name", ...), obs_span("name", ...) — calls
#: passing a variable don't match (the runtime catalog check covers those).
_SPAN_CALL_RE = re.compile(r"""span\(\s*["']([a-z0-9_]+)["']""")


def _obs_catalogs() -> tuple[dict, dict]:
    """``(METRIC_CATALOG, SPAN_CATALOG)`` parsed without importing repro.

    The catalog module keeps both as plain literals exactly so this
    script can read them with ``ast.literal_eval`` in the
    dependency-free CI docs job.
    """
    if not os.path.exists(_CATALOG_MODULE):
        return {}, {}
    tree = ast.parse(open(_CATALOG_MODULE, encoding="utf-8").read())
    found = {}
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
        for name in targets:
            if name in ("METRIC_CATALOG", "SPAN_CATALOG") and node.value:
                found[name] = ast.literal_eval(node.value)
    return found.get("METRIC_CATALOG", {}), found.get("SPAN_CATALOG", {})


def _undocumented_obs_names(docs_text: str) -> list[str]:
    """Cataloged metric/span names never mentioned in the docs."""
    metrics, spans = _obs_catalogs()
    return [
        name
        for name in sorted(metrics) + sorted(spans)
        if not re.search(rf"\b{re.escape(name)}\b", docs_text)
    ]


def _uncataloged_registrations() -> list[str]:
    """Metric/span names registered in ``src/repro`` but not cataloged."""
    metrics, spans = _obs_catalogs()
    problems = []
    for dirpath, dirnames, filenames in os.walk(SRC_ROOT):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("__"))
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, REPO_ROOT)
            text = open(path, encoding="utf-8").read()
            for name in _METRIC_CALL_RE.findall(text):
                if name not in metrics:
                    problems.append(f"{rel}: metric {name!r}")
            for name in _SPAN_CALL_RE.findall(text):
                if name not in spans:
                    problems.append(f"{rel}: span {name!r}")
    return problems


_BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_perf.json")


def _bench_sections() -> list[str]:
    """Top-level section names of the committed benchmark baseline."""
    if not os.path.exists(_BENCH_JSON):
        return []
    import json

    with open(_BENCH_JSON, encoding="utf-8") as fh:
        return sorted(json.load(fh))


def _undocumented_bench_sections(docs_text: str) -> list[str]:
    """Baseline sections whose name never appears in the docs."""
    return [
        s
        for s in _bench_sections()
        if not re.search(rf"\b{re.escape(s)}\b", docs_text)
    ]


def _doc_files() -> list[str]:
    docs = [os.path.join(REPO_ROOT, "README.md"), os.path.join(REPO_ROOT, "ROADMAP.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                docs.append(os.path.join(docs_dir, name))
    return [d for d in docs if os.path.exists(d)]


def main() -> int:
    problems: list[str] = []
    for rel in REQUIRED:
        if not os.path.exists(os.path.join(REPO_ROOT, rel)):
            problems.append(f"missing required doc: {rel}")

    n_links = 0
    docs_text = []
    for doc in _doc_files():
        base = os.path.dirname(doc)
        rel_doc = os.path.relpath(doc, REPO_ROOT)
        text = open(doc, encoding="utf-8").read()
        docs_text.append(text)
        for target in _LINK_RE.findall(text):
            if _SCHEME_RE.match(target) or target.startswith("#"):
                continue  # external URL or intra-document anchor
            path = target.split("#", 1)[0]
            n_links += 1
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                problems.append(f"{rel_doc}: broken link -> {target}")

    combined = "\n".join(docs_text)
    n_modules = len(_module_names())
    for module in _undocumented_modules(combined):
        problems.append(
            f"module {module} is not mentioned in README.md/ROADMAP.md/docs/*.md"
        )

    n_packages = len(_package_names())
    for package in _undocumented_packages(combined):
        problems.append(
            f"package {package} is not mentioned by dotted name in "
            "README.md/ROADMAP.md/docs/*.md"
        )

    n_routes = len(_route_patterns())
    for pattern in _undocumented_routes(combined):
        problems.append(
            f"HTTP route {pattern} is not documented in "
            "README.md/ROADMAP.md/docs/*.md"
        )

    n_sections = len(_bench_sections())
    for section in _undocumented_bench_sections(combined):
        problems.append(
            f"BENCH_perf.json section {section!r} is not documented in "
            "README.md/ROADMAP.md/docs/*.md (describe its schema in "
            "docs/PERFORMANCE.md)"
        )

    obs_metrics, obs_spans = _obs_catalogs()
    n_obs = len(obs_metrics) + len(obs_spans)
    for name in _undocumented_obs_names(combined):
        problems.append(
            f"obs catalog entry {name!r} is not documented (add it to the "
            "docs/OBSERVABILITY.md catalog tables)"
        )
    for site in _uncataloged_registrations():
        problems.append(
            f"{site} is registered in src/ but not declared in "
            "repro.obs.catalog"
        )

    if problems:
        for p in problems:
            print(f"FAIL {p}")
        return 1
    print(
        f"docs ok: {len(REQUIRED)} required files, {n_links} local links "
        f"resolve, {n_modules} public modules and {n_packages} packages "
        f"documented, "
        f"{n_routes} HTTP routes documented, "
        f"{n_sections} bench sections documented, "
        f"{n_obs} obs catalog entries documented and consistent"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
