"""Docs smoke for CI: files exist, links resolve, modules are documented.

Three checks:

1. the top-level docs exist;
2. every markdown link in ``README.md``, ``ROADMAP.md``, and
   ``docs/*.md`` with a *local* target (no URL scheme) resolves to a
   real file or directory relative to the linking document — anchors
   (``file.md#section``) are checked against the file only;
3. every public module under ``src/repro`` (non-underscore ``.py``
   files) is mentioned by name somewhere in the combined docs, so new
   subsystems cannot land undocumented.

Run::

    python tools/check_docs.py
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

REQUIRED = [
    "README.md",
    os.path.join("docs", "ARCHITECTURE.md"),
    os.path.join("docs", "PERFORMANCE.md"),
    os.path.join("docs", "TESTING.md"),
    "ROADMAP.md",
]

#: Inline markdown links: [text](target)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")


def _module_names() -> list[str]:
    """Dotted names of every public module under ``src/repro``."""
    out = []
    for dirpath, dirnames, filenames in os.walk(SRC_ROOT):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("__"))
        for name in sorted(filenames):
            if name.endswith(".py") and not name.startswith("_"):
                rel = os.path.relpath(os.path.join(dirpath, name), SRC_ROOT)
                out.append("repro." + rel[:-3].replace(os.sep, "."))
    return out


def _undocumented_modules(docs_text: str) -> list[str]:
    """Public modules whose name never appears in the combined docs."""
    missing = []
    for module in _module_names():
        basename = module.rsplit(".", 1)[-1]
        if not re.search(rf"\b{re.escape(basename)}\b", docs_text):
            missing.append(module)
    return missing


def _doc_files() -> list[str]:
    docs = [os.path.join(REPO_ROOT, "README.md"), os.path.join(REPO_ROOT, "ROADMAP.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                docs.append(os.path.join(docs_dir, name))
    return [d for d in docs if os.path.exists(d)]


def main() -> int:
    problems: list[str] = []
    for rel in REQUIRED:
        if not os.path.exists(os.path.join(REPO_ROOT, rel)):
            problems.append(f"missing required doc: {rel}")

    n_links = 0
    docs_text = []
    for doc in _doc_files():
        base = os.path.dirname(doc)
        rel_doc = os.path.relpath(doc, REPO_ROOT)
        text = open(doc, encoding="utf-8").read()
        docs_text.append(text)
        for target in _LINK_RE.findall(text):
            if _SCHEME_RE.match(target) or target.startswith("#"):
                continue  # external URL or intra-document anchor
            path = target.split("#", 1)[0]
            n_links += 1
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                problems.append(f"{rel_doc}: broken link -> {target}")

    n_modules = len(_module_names())
    for module in _undocumented_modules("\n".join(docs_text)):
        problems.append(
            f"module {module} is not mentioned in README.md/ROADMAP.md/docs/*.md"
        )

    if problems:
        for p in problems:
            print(f"FAIL {p}")
        return 1
    print(
        f"docs ok: {len(REQUIRED)} required files, {n_links} local links "
        f"resolve, {n_modules} public modules documented"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
