"""Docs smoke for CI: required files exist and internal links resolve.

Checks that the top-level docs exist, extracts every markdown link from
``README.md`` and ``docs/*.md``, and verifies that each *local* target
(no URL scheme) resolves to a real file or directory relative to the
linking document.  Anchors (``file.md#section``) are checked against the
file only.

Run::

    python tools/check_docs.py
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

REQUIRED = [
    "README.md",
    os.path.join("docs", "ARCHITECTURE.md"),
    os.path.join("docs", "PERFORMANCE.md"),
    "ROADMAP.md",
]

#: Inline markdown links: [text](target)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def _doc_files() -> list[str]:
    docs = [os.path.join(REPO_ROOT, "README.md"), os.path.join(REPO_ROOT, "ROADMAP.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                docs.append(os.path.join(docs_dir, name))
    return [d for d in docs if os.path.exists(d)]


def main() -> int:
    problems: list[str] = []
    for rel in REQUIRED:
        if not os.path.exists(os.path.join(REPO_ROOT, rel)):
            problems.append(f"missing required doc: {rel}")

    n_links = 0
    for doc in _doc_files():
        base = os.path.dirname(doc)
        rel_doc = os.path.relpath(doc, REPO_ROOT)
        for target in _LINK_RE.findall(open(doc, encoding="utf-8").read()):
            if _SCHEME_RE.match(target) or target.startswith("#"):
                continue  # external URL or intra-document anchor
            path = target.split("#", 1)[0]
            n_links += 1
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                problems.append(f"{rel_doc}: broken link -> {target}")

    if problems:
        for p in problems:
            print(f"FAIL {p}")
        return 1
    print(f"docs ok: {len(REQUIRED)} required files, {n_links} local links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
