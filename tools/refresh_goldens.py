"""Regenerate (or verify) the committed scenario golden metrics.

Runs the full scenario harness — baseline world + every registered
scenario end to end — and compares the fresh metrics against the
committed ``tests/goldens/scenario_metrics.json`` using the tolerance
contract of :mod:`repro.scenarios.goldens`.  Every metric that moved
beyond tolerance is printed *before* anything is overwritten, so a
behavioural regression can't silently re-baseline itself.

Run::

    python tools/refresh_goldens.py            # report drift, then rewrite
    python tools/refresh_goldens.py --check    # report drift, never write
    python tools/refresh_goldens.py --scenario phantom_provider  # subset
"""

from __future__ import annotations

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import scenarios  # noqa: E402
from repro.scenarios.goldens import (  # noqa: E402
    compare_all,
    default_golden_path,
    load_goldens,
    save_goldens,
    to_golden,
)

GOLDEN_PATH = default_golden_path(REPO_ROOT)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare fresh metrics against the committed goldens and exit "
        "non-zero on out-of-tolerance drift; never write",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="restrict to named scenario(s); the golden file keeps every "
        "other scenario's committed entry",
    )
    args = parser.parse_args()

    names = args.scenario if args.scenario else scenarios.names()
    for name in names:
        scenarios.get(name)  # fail fast on typos

    print(f"building baseline world ({len(names)} scenario(s) to run)...")
    baseline = scenarios.build_baseline()
    fresh: dict[str, dict] = {}
    invariant_failures = 0
    for name in names:
        run = scenarios.run_scenario(name, baseline)
        failures = scenarios.check_invariants(run, baseline)
        invariant_failures += len(failures)
        fresh[name] = to_golden(run.metrics)
        status = "ok" if not failures else "INVARIANT-FAIL"
        print(
            f"  {name:30s} auc={run.metrics.auc_injected:.3f} "
            f"sep={run.metrics.percentile_separation:5.1f} "
            f"inj={run.metrics.n_injected:5d} -> {status}"
        )
        for failure in failures:
            print(f"      {failure}")

    committed: dict[str, dict] = {}
    if os.path.exists(GOLDEN_PATH):
        committed = load_goldens(GOLDEN_PATH)
        drift = compare_all(fresh, {n: committed[n] for n in committed if n in fresh})
        if drift:
            print("\nout-of-tolerance drift vs committed goldens:")
            for name, failures in drift.items():
                for failure in failures:
                    print(f"  {name}: {failure}")
        else:
            print("\nall fresh metrics within tolerance of committed goldens")
        if args.check:
            return 1 if (drift or invariant_failures) else 0
    elif args.check:
        print(f"no committed goldens at {GOLDEN_PATH}")
        return 1

    if invariant_failures:
        print(
            f"\nrefusing to write goldens: {invariant_failures} invariant "
            "failure(s) above — fix the scenario (or its floors) first"
        )
        return 1
    merged = {**committed, **fresh}
    save_goldens(GOLDEN_PATH, merged)
    print(f"\nwrote {len(merged)} scenario golden(s) to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
